//===- runtime/Autotuner.h - Per-problem variant selection -----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Picks the fastest generated-kernel variant per problem, the way the
/// paper's per-configuration generation model implies: on the first
/// request for a (kernel, widths, batch-size class) problem the tuner
/// compiles every candidate knob combination (Barrett vs Montgomery,
/// pruning on/off, scheduled vs unscheduled, serial vs sim-GPU backend ×
/// block dim {64..1024} vs vector backend × lane width {4..16}), times
/// each over a calibration batch on this machine, and pins the winner.
/// Decisions persist as JSON so a process restart reuses them instead of
/// re-timing.
///
/// What the tuner measures on this CPU substrate — and what it does not —
/// is recorded in DESIGN.md ("Runtime autotuning"): steady-state batched
/// throughput of the compiled scalar kernel, not GPU occupancy or memory
/// behavior.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_AUTOTUNER_H
#define MOMA_RUNTIME_AUTOTUNER_H

#include "runtime/KernelRegistry.h"
#include "support/ThreadError.h"

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace moma {
namespace runtime {

/// Tuning configuration.
struct AutotunerOptions {
  /// Elements in the calibration batch each candidate is timed on when
  /// the caller gives no batch-size hint (also the effective bucket
  /// floor).
  unsigned CalibrationElems = 256;
  /// Upper bound on the calibration batch when a large size hint arrives
  /// (the bucket itself is unbounded only up to 16384; see choose()).
  unsigned MaxCalibrationElems = 4096;
  /// Timed repetitions per candidate; the minimum is kept.
  unsigned Repeats = 3;
  /// Dimensions to sweep. A disabled dimension keeps the base plan value.
  bool TuneReduction = true;
  bool TunePrune = true;
  bool TuneSchedule = true;
  /// Sweep the execution backend (serial vs sim-GPU grid vs SIMD vector)
  /// and, for the sim-GPU candidates, the block dimensions below (for the
  /// vector candidates, the lane widths below). Off pins the base plan's
  /// backend and geometry.
  bool TuneBackend = true;
  /// Block dimensions swept for sim-GPU candidates (paper §5.1: at most
  /// 1024 threads per block). Geometry is a launch parameter of the grid
  /// ABI, so these share one compiled module per knob combination.
  std::vector<unsigned> BlockDims = {64, 128, 256, 512, 1024};
  /// Lane widths swept for vector candidates. Like the block dimension,
  /// the lane count is a launch parameter of the vector ABI, so these
  /// share one compiled module per knob combination. Empty skips the
  /// vector backend from the sweep.
  std::vector<unsigned> VectorWidths = {4, 8, 16};
  /// Sweep the NTT stage-fusion depth for transform-shaped problems
  /// (chooseNtt). Off pins the base plan's FuseDepth. Like the block
  /// dimension, depth is a launch parameter — the sweep costs timing
  /// only, no extra compiles.
  bool TuneFuseDepth = true;
  /// Fusion depths swept (clamped to PlanOptions::MaxFuseDepth).
  std::vector<unsigned> FuseDepths = {1, 2, 3};
  /// When non-empty: load(CachePath) at construction and save(CachePath)
  /// after every tuning run, so decisions survive process restarts.
  std::string CachePath;
};

/// One pinned decision for a problem key.
struct TuneDecision {
  rewrite::PlanOptions Opts; ///< winning knob combination
  double NsPerElem = 0;      ///< winner's measured per-element time
  bool FromCache = false;    ///< loaded from persisted JSON, not re-timed
};

/// First-request autotuner over a KernelRegistry. Thread-safe: share one
/// tuner across threads. Concurrent choose()/chooseNtt() calls for one
/// cold problem single-flight onto one timing sweep — followers block
/// until the leader's decision lands, then serve it, so N worker threads
/// racing on a cold problem pay one sweep total. Decisions are immutable
/// once pinned, so the returned pointers stay valid for the tuner's
/// lifetime; error() is a per-calling-thread slot.
class Autotuner {
public:
  explicit Autotuner(KernelRegistry &Reg,
                     AutotunerOptions Opts = AutotunerOptions());

  /// Returns the pinned variant for (Op, |Q| bits) at the batch size
  /// class of \p SizeHint, tuning now on a first request. Decisions are
  /// per *problem size*: the hint (elements per dispatch; 0 means
  /// CalibrationElems) rounds up to a power-of-two bucket in [64, 16384],
  /// because the serial/sim-GPU crossover moves with the batch size. The
  /// calibration batch matches the bucket (capped at
  /// MaxCalibrationElems). \p Base supplies the values of knobs outside
  /// the swept dimensions (word size, multiply rule). Null when every
  /// candidate failed to compile; error() explains.
  const TuneDecision *choose(KernelOp Op, const mw::Bignum &Q,
                             const rewrite::PlanOptions &Base =
                                 rewrite::PlanOptions(),
                             size_t SizeHint = 0);

  /// The transform-shaped companion of choose(): picks the butterfly
  /// variant for whole batched NTTs of \p NPoints points (candidates are
  /// timed on real fused stage-group walks — bit-reversal gather,
  /// in-register sub-stages, domain-matched twiddle tables — so the
  /// FuseDepth axis is measured, not guessed). Decisions key on the
  /// butterfly problem, the transform size, and the batch-size class of
  /// (NPoints/2) * Batch butterflies per stage dispatch. \p Q must be
  /// NTT-friendly for \p NPoints (2-adicity >= log2 n); null with
  /// error() set otherwise.
  const TuneDecision *chooseNtt(const mw::Bignum &Q,
                                const rewrite::PlanOptions &Base,
                                size_t NPoints, size_t Batch);

  /// The power-of-two batch-size class \p SizeHint falls into.
  static unsigned sizeBucket(size_t SizeHint);

  /// Serializes all decisions as JSON. Returns false on I/O failure.
  bool save(const std::string &Path) const;

  /// Merges decisions from a JSON file produced by save(). Entries loaded
  /// here are served with FromCache = true and are never re-timed.
  /// Returns false (with error()) on I/O or parse failure; a missing file
  /// is reported as failure but leaves the tuner usable.
  bool load(const std::string &Path);

  /// Diagnostics from the calling thread's most recent failed call;
  /// empty after success.
  const std::string &error() const { return Err.get(); }

  /// Tuning counters.
  struct Stats {
    unsigned Tuned = 0;     ///< problems tuned by timing candidates
    unsigned Reused = 0;    ///< choose() served from a pinned decision
    unsigned Candidates = 0; ///< total candidate variants timed
  };
  Stats stats() const;
  size_t numDecisions() const;

private:
  /// Decision-table key: PlanKey::problemStr() plus the size bucket plus
  /// every base knob the sweep dimensions leave pinned, so conflicting
  /// base plans never share a decision.
  std::string decisionKey(KernelOp Op, const mw::Bignum &Q,
                          const rewrite::PlanOptions &Base,
                          unsigned Bucket) const;
  /// The single-flight skeleton shared by choose() and chooseNtt():
  /// serves a pinned decision, waits out a sweep another thread is
  /// running on \p Problem, or runs \p Sweep itself with no locks held
  /// and publishes its decision. \p Sweep fills the decision and the
  /// candidates-timed count, or returns false with an error message.
  const TuneDecision *
  serveOrTune(const std::string &Problem,
              const std::function<bool(TuneDecision &, unsigned &,
                                       std::string &)> &Sweep);
  /// The timing sweeps; lock-free (the registry they drive is itself
  /// thread-safe), reporting through the out-parameters only.
  bool tuneProblem(KernelOp Op, const mw::Bignum &Q,
                   const rewrite::PlanOptions &Base, unsigned Bucket,
                   TuneDecision &Out, unsigned &CandsTimed,
                   std::string &Error) const;
  bool tuneNttProblem(const mw::Bignum &Q, const rewrite::PlanOptions &Base,
                      size_t NPoints, unsigned Bucket, TuneDecision &Out,
                      unsigned &CandsTimed, std::string &Error) const;
  /// Shared knob-grid enumeration (reduction x prune x schedule x
  /// backend/geometry [x fuse depth for transform problems]).
  std::vector<rewrite::PlanOptions> candidates(KernelOp Op,
                                               const mw::Bignum &Q,
                                               const rewrite::PlanOptions
                                                   &Base,
                                               bool SweepFuse,
                                               std::string *Err) const;
  /// save() with Mu already held.
  bool saveLocked(const std::string &Path) const;

  KernelRegistry &Reg;
  AutotunerOptions O;
  mutable std::mutex Mu; ///< guards S, Decisions, Tuning
  std::condition_variable TuneCV; ///< signaled when a sweep finishes
  Stats S;
  support::ThreadError Err;
  /// Keyed by PlanKey::problemStr(). std::map: node-based, so decision
  /// addresses handed out stay stable as the table grows.
  std::map<std::string, TuneDecision> Decisions;
  /// Problems with a sweep in flight (single-flight admission).
  std::set<std::string> Tuning;
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_AUTOTUNER_H
