//===- runtime/PlanKey.cpp - Canonical plan-cache keys --------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/PlanKey.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace moma;
using namespace moma::runtime;

const char *moma::runtime::kernelOpName(KernelOp Op) {
  switch (Op) {
  case KernelOp::AddMod:
    return "addmod";
  case KernelOp::SubMod:
    return "submod";
  case KernelOp::MulMod:
    return "mulmod";
  case KernelOp::Butterfly:
    return "butterfly";
  case KernelOp::Axpy:
    return "axpy";
  case KernelOp::RnsDecompose:
    return "rnsdec";
  case KernelOp::RnsRecombineStep:
    return "rnsrec";
  case KernelOp::RnsRescaleStep:
    return "rnsresc";
  }
  moma_unreachable("unknown kernel op");
}

bool moma::runtime::kernelOpMultiplies(KernelOp Op) {
  // The RNS CRT kernels do multiply, but their reduction is the baked-in
  // generalized Barrett sequence — the reduction/multiply knobs cannot
  // change the generated code, so they report false and the
  // canonicalization below folds the knobs like addmod/submod.
  return Op == KernelOp::MulMod || Op == KernelOp::Butterfly ||
         Op == KernelOp::Axpy;
}

unsigned PlanKey::canonicalContainerBits(unsigned ModBits, unsigned WordBits) {
  unsigned Container = WordBits;
  while (Container < ModBits + 4)
    Container *= 2;
  return Container;
}

PlanKey PlanKey::forModulus(KernelOp Op, const mw::Bignum &Q,
                            const rewrite::PlanOptions &Opts) {
  if (Q.bitWidth() < 2)
    fatalError("PlanKey: modulus must be at least two bits");
  PlanKey K;
  K.Op = Op;
  K.ModBits = Q.bitWidth();
  K.ContainerBits = canonicalContainerBits(K.ModBits, Opts.TargetWordBits);
  K.Opts = Opts;
  if (!kernelOpMultiplies(Op)) {
    // The knobs cannot change an add/sub kernel; fold them so every
    // variant maps onto one cache entry.
    K.Opts.Red = mw::Reduction::Barrett;
    K.Opts.MulAlg = mw::MulAlgorithm::Schoolbook;
  }
  // Launch geometry is a SimGpu-only knob: fold it to 0 on serial plans
  // (one cache entry regardless of the caller's block dim), and give
  // SimGpu plans the paper's 256-thread default when left unset. Keys
  // stay canonical either way, and serial keys keep their pre-backend
  // string form. The lane count is likewise Vector-only: fold it to 0
  // elsewhere, and give Vector plans (whose geometry is lanes, not
  // blocks) an 8-lane default when left unset. Interp plans have no
  // launch geometry at all and take the same fold as serial.
  if (K.Opts.Backend == rewrite::ExecBackend::SimGpu) {
    if (K.Opts.BlockDim == 0)
      K.Opts.BlockDim = 256;
    K.Opts.VectorWidth = 0;
  } else if (K.Opts.Backend == rewrite::ExecBackend::Vector) {
    K.Opts.BlockDim = 0;
    if (K.Opts.VectorWidth == 0)
      K.Opts.VectorWidth = 8;
  } else {
    K.Opts.BlockDim = 0;
    K.Opts.VectorWidth = 0;
  }
  // Stage fusion only exists for the NTT stage kernel: fold the knob to 1
  // everywhere else so a fused base plan never splits the element-wise
  // cache entries. Butterfly plans clamp into the emitters' supported
  // window (0 reads as "unset" -> 1).
  if (Op != KernelOp::Butterfly || K.Opts.FuseDepth == 0)
    K.Opts.FuseDepth = 1;
  else
    K.Opts.FuseDepth =
        std::min(K.Opts.FuseDepth, rewrite::PlanOptions::MaxFuseDepth);
  // The ring axis likewise only exists for the NTT stage kernel: the
  // negacyclic twist is a table fold, not a different element kernel.
  if (Op != KernelOp::Butterfly)
    K.Opts.Ring = rewrite::NttRing::Cyclic;
  // The pass spec only matters while pruning runs; fold it (and the
  // "default" spelling of the default pipeline) so the variants that
  // generate identical code share one cache entry.
  if (!K.Opts.Prune || K.Opts.Passes == "default")
    K.Opts.Passes.clear();
  return K;
}

PlanKey PlanKey::forRns(KernelOp Op, const mw::Bignum &Q, unsigned WideWords,
                        const rewrite::PlanOptions &Opts) {
  PlanKey K = forModulus(Op, Q, Opts);
  if (Op == KernelOp::RnsDecompose) {
    // The decompose kernel reduces a WideWords-word value to one limb
    // residue: the container is sized by the wide side, the modulus by
    // the limb, so both widths live in one key.
    if (WideWords < 1)
      fatalError("PlanKey: RnsDecompose needs the wide word count");
    K.WideWords = WideWords;
    K.ContainerBits =
        canonicalContainerBits(WideWords * 64 - 4, Opts.TargetWordBits);
  }
  return K;
}

std::string PlanKey::problemStr() const {
  std::string Wide = WideWords ? formatv("/W%u", WideWords) : std::string();
  return formatv("%s/c%u/m%u%s/w%u", kernelOpName(Op), ContainerBits,
                 ModBits, Wide.c_str(), Opts.TargetWordBits);
}

std::string PlanKey::str() const {
  std::string Wide = WideWords ? formatv("/W%u", WideWords) : std::string();
  return formatv("%s/c%u/m%u%s/%s", kernelOpName(Op), ContainerBits, ModBits,
                 Wide.c_str(), Opts.str().c_str());
}
