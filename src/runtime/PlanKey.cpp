//===- runtime/PlanKey.cpp - Canonical plan-cache keys --------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/PlanKey.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace moma;
using namespace moma::runtime;

const char *moma::runtime::kernelOpName(KernelOp Op) {
  switch (Op) {
  case KernelOp::AddMod:
    return "addmod";
  case KernelOp::SubMod:
    return "submod";
  case KernelOp::MulMod:
    return "mulmod";
  case KernelOp::Butterfly:
    return "butterfly";
  case KernelOp::Axpy:
    return "axpy";
  }
  moma_unreachable("unknown kernel op");
}

bool moma::runtime::kernelOpMultiplies(KernelOp Op) {
  return Op == KernelOp::MulMod || Op == KernelOp::Butterfly ||
         Op == KernelOp::Axpy;
}

unsigned PlanKey::canonicalContainerBits(unsigned ModBits, unsigned WordBits) {
  unsigned Container = WordBits;
  while (Container < ModBits + 4)
    Container *= 2;
  return Container;
}

PlanKey PlanKey::forModulus(KernelOp Op, const mw::Bignum &Q,
                            const rewrite::PlanOptions &Opts) {
  if (Q.bitWidth() < 2)
    fatalError("PlanKey: modulus must be at least two bits");
  PlanKey K;
  K.Op = Op;
  K.ModBits = Q.bitWidth();
  K.ContainerBits = canonicalContainerBits(K.ModBits, Opts.TargetWordBits);
  K.Opts = Opts;
  if (!kernelOpMultiplies(Op)) {
    // The knobs cannot change an add/sub kernel; fold them so every
    // variant maps onto one cache entry.
    K.Opts.Red = mw::Reduction::Barrett;
    K.Opts.MulAlg = mw::MulAlgorithm::Schoolbook;
  }
  // Launch geometry is a SimGpu-only knob: fold it to 0 on serial plans
  // (one cache entry regardless of the caller's block dim), and give
  // SimGpu plans the paper's 256-thread default when left unset. Keys
  // stay canonical either way, and serial keys keep their pre-backend
  // string form.
  if (K.Opts.Backend == rewrite::ExecBackend::Serial)
    K.Opts.BlockDim = 0;
  else if (K.Opts.BlockDim == 0)
    K.Opts.BlockDim = 256;
  // Stage fusion only exists for the NTT stage kernel: fold the knob to 1
  // everywhere else so a fused base plan never splits the element-wise
  // cache entries. Butterfly plans clamp into the emitters' supported
  // window (0 reads as "unset" -> 1).
  if (Op != KernelOp::Butterfly || K.Opts.FuseDepth == 0)
    K.Opts.FuseDepth = 1;
  else
    K.Opts.FuseDepth =
        std::min(K.Opts.FuseDepth, rewrite::PlanOptions::MaxFuseDepth);
  return K;
}

std::string PlanKey::problemStr() const {
  return formatv("%s/c%u/m%u/w%u", kernelOpName(Op), ContainerBits, ModBits,
                 Opts.TargetWordBits);
}

std::string PlanKey::str() const {
  return formatv("%s/c%u/m%u/%s", kernelOpName(Op), ContainerBits, ModBits,
                 Opts.str().c_str());
}
