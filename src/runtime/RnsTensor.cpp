//===- runtime/RnsTensor.cpp - Residue-form batch handle ------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/RnsTensor.h"

using namespace moma;
using namespace moma::runtime;

const char *moma::runtime::rnsDomainName(RnsDomain D) {
  return D == RnsDomain::Ntt ? "ntt" : "coeff";
}

RnsTensor::RnsTensor(const RnsContext &Ctx, size_t NPoints, size_t Batch,
                     rewrite::NttRing Ring, RnsDomain Domain)
    : Ctx(&Ctx), NPts(NPoints), Bat(Batch), Ring(Ring), Domain(Domain),
      Owned(Ctx.numLimbs() * NPoints * Batch, 0) {}

RnsTensor RnsTensor::borrow(const RnsContext &Ctx, std::uint64_t *Data,
                            size_t NPoints, size_t Batch,
                            rewrite::NttRing Ring, RnsDomain Domain) {
  RnsTensor T;
  T.Ctx = &Ctx;
  T.NPts = NPoints;
  T.Bat = Batch;
  T.Ring = Ring;
  T.Domain = Domain;
  T.Ext = Data;
  return T;
}
