//===- runtime/PlanKey.h - Canonical plan-cache keys -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache key of the batched-dispatch runtime. A PlanKey names one
/// generated-kernel variant: the operation, the canonical widths, and the
/// PlanOptions knobs (reduction, multiply rule, pruning, scheduling).
///
/// Canonicalization (see DESIGN.md "PlanKey canonicalization"):
///  * ModBits is the exact modulus bit-width; the container is the
///    smallest 2^k-word power-of-two width with ModBits + 4 <= container
///    (the paper's evaluation shape: four free top bits for Barrett).
///  * The modulus *value* is NOT part of the key. Generated kernels take
///    q (and mu / qinv / r2) as runtime parameters, so one compiled plan
///    serves every modulus of the same bit-width.
///  * Operations without a modular multiplication (addmod/submod) pin the
///    reduction knob to Barrett and the multiply rule to schoolbook: the
///    knobs cannot change the generated code, and folding them keeps one
///    cache entry per distinct kernel.
///  * Backend and launch geometry are part of the key (a serial and a
///    sim-GPU compilation of the same kernel are distinct artifacts).
///    Serial plans fold BlockDim to 0 and keep the historical key string
///    (backward-readable: every pre-backend key names a serial plan);
///    SimGpu plans default an unset BlockDim to 256 and append
///    "/simgpu/b<dim>".
///  * FuseDepth (NTT stage fusion, radix-2^k) only exists for butterfly
///    plans: every other op folds it to 1, butterfly clamps it into
///    [1, PlanOptions::MaxFuseDepth] and appends "/f<depth>" when > 1.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_PLANKEY_H
#define MOMA_RUNTIME_PLANKEY_H

#include "mw/Bignum.h"
#include "rewrite/PlanOptions.h"

#include <cstdint>
#include <string>

namespace moma {
namespace runtime {

/// The scalar kernels the runtime dispatches in batch. The element-wise
/// BLAS vector operations alias onto these (vadd -> AddMod, vsub ->
/// SubMod, vmul -> MulMod); the NTT engine runs on Butterfly. The RNS
/// layer (runtime/RnsContext.h) adds the CRT edge kernels: RnsDecompose
/// reduces one wide element to a word-sized limb residue (generalized
/// Barrett, c = a mod q with a up to the wide container), and
/// RnsRecombineStep accumulates one limb back, yo = (a*x + y) mod q with
/// a = the limb's CRT weight (broadcast), x = the word-sized residue and
/// q = the full RNS modulus M. RnsRescaleStep is the per-limb modulus
/// switching element, co = (x - y)*a mod q with a = the dropped limb's
/// inverse q_last^-1 mod q (broadcast) and y = the dropped limb's
/// residue (one conditional subtraction folds it under q) — run once per
/// surviving limb, it divides exactly by q_last without ever leaving
/// residue form.
enum class KernelOp : std::uint8_t {
  AddMod,
  SubMod,
  MulMod,
  Butterfly,
  Axpy,
  RnsDecompose,
  RnsRecombineStep,
  RnsRescaleStep
};

/// Mnemonic kernel-op name ("addmod", ..., "butterfly").
const char *kernelOpName(KernelOp Op);

/// True for kernels containing a modular multiplication (the ones whose
/// generated code depends on the reduction strategy and multiply rule).
bool kernelOpMultiplies(KernelOp Op);

/// Canonical description of one compiled kernel variant.
struct PlanKey {
  KernelOp Op = KernelOp::MulMod;
  unsigned ContainerBits = 128; ///< canonical power-of-two-word container
  unsigned ModBits = 124;       ///< exact modulus bit-width
  /// RnsDecompose only: stored words of the wide input being reduced
  /// (the RNS base's elemWords(M)); the container is then the smallest
  /// power-of-two-word width holding those words, not the limb's
  /// canonical container. Folded to 0 for every other op.
  unsigned WideWords = 0;
  rewrite::PlanOptions Opts; ///< generation knobs (canonicalized)

  /// Smallest 2^k * WordBits container with ModBits + 4 <= container.
  static unsigned canonicalContainerBits(unsigned ModBits, unsigned WordBits);

  /// Builds the canonical key for \p Op over modulus \p Q with the knob
  /// values of \p Opts (container derived, knobs folded per the rules
  /// above).
  static PlanKey forModulus(KernelOp Op, const mw::Bignum &Q,
                            const rewrite::PlanOptions &Opts = {});

  /// forModulus for the RNS CRT kernels: \p WideWords is the stored word
  /// count of the wide side (required for RnsDecompose, ignored
  /// elsewhere). The CRT kernels pin their variant knobs — generalized
  /// Barrett reduction, schoolbook multiply — so the whole knob grid maps
  /// onto one cache entry per problem shape.
  static PlanKey forRns(KernelOp Op, const mw::Bignum &Q, unsigned WideWords,
                        const rewrite::PlanOptions &Opts = {});

  /// The problem part of the key (no variant knobs except the word size):
  /// "mulmod/c128/m124/w64". Autotune decisions are stored per problem.
  std::string problemStr() const;

  /// The full canonical key: problemStr() + "/" + variant knobs, e.g.
  /// "mulmod/c128/m124/w64/barrett/schoolbook/prune/noschedule".
  std::string str() const;

  bool operator==(const PlanKey &K) const {
    return Op == K.Op && ContainerBits == K.ContainerBits &&
           ModBits == K.ModBits && WideWords == K.WideWords &&
           Opts == K.Opts;
  }
  bool operator!=(const PlanKey &K) const { return !(*this == K); }
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_PLANKEY_H
