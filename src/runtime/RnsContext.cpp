//===- runtime/RnsContext.cpp - Runtime RNS base --------------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/RnsContext.h"

#include "field/PrimeGen.h"
#include "runtime/KernelRegistry.h"
#include "support/Format.h"

#include <algorithm>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

bool RnsContext::create(unsigned NumLimbs, RnsContext &Out, std::string *Err,
                        const Options &O) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "RnsContext: " + Msg;
    return false;
  };
  if (NumLimbs < 2)
    return Fail("need at least two limbs (one limb is plain modular "
                "arithmetic)");
  if (O.LimbBits < 30 || O.LimbBits > 62)
    return Fail(formatv("limb bits %u outside [30, 62]", O.LimbBits));
  if (O.TwoAdicity + 2 > O.LimbBits)
    return Fail("two-adicity leaves no room for the prime search");

  Out = RnsContext();
  Out.Opts = O;
  // Distinct primes of one common width: walk the deterministic
  // nttPrime seed space and drop duplicates, so a (NumLimbs, Options)
  // pair always names the same base in every process.
  std::uint64_t Seed = O.Seed;
  while (Out.Limbs.size() < NumLimbs) {
    Bignum Q = field::nttPrime(O.LimbBits, O.TwoAdicity, Seed++);
    if (std::find(Out.Limbs.begin(), Out.Limbs.end(), Q) ==
        Out.Limbs.end())
      Out.Limbs.push_back(Q);
  }

  Out.M = Bignum(1);
  for (const Bignum &Q : Out.Limbs)
    Out.M = Out.M * Q;
  Out.WideWords = (Out.M.bitWidth() + 63) / 64;

  for (const Bignum &Q : Out.Limbs) {
    Bignum Mi = Out.M / Q;
    Bignum W = (Mi * (Mi % Q).invMod(Q)) % Out.M;
    Out.Weights.push_back(W);
    Out.WeightWords.push_back(packWordsMsbFirst(W, Out.WideWords));
  }
  return true;
}

std::vector<std::uint64_t> RnsContext::encode(const Bignum &X) const {
  std::vector<std::uint64_t> R;
  R.reserve(Limbs.size());
  for (const Bignum &Q : Limbs)
    R.push_back((X % Q).low64());
  return R;
}

Bignum RnsContext::decode(const std::uint64_t *Residues,
                          size_t Stride) const {
  Bignum Acc(0);
  for (size_t L = 0; L < Limbs.size(); ++L)
    Acc = (Acc + Weights[L] * Bignum(Residues[L * Stride])) % M;
  return Acc;
}
