//===- runtime/RnsContext.cpp - Runtime RNS base --------------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/RnsContext.h"

#include "field/PrimeGen.h"
#include "runtime/KernelRegistry.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <mutex>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

/// The subChain view cache: one per created context, shared by every
/// copy of it (shared_ptr member), so view identity survives context
/// copies and repeated calls. Views own their own cache in turn, so
/// nested subChain(k).subChain(j) is identity-stable too.
struct RnsContext::ChainCache {
  std::mutex Mu;
  std::map<size_t, std::unique_ptr<RnsContext>> Views;
};

bool RnsContext::create(unsigned NumLimbs, RnsContext &Out, std::string *Err,
                        const Options &O) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "RnsContext: " + Msg;
    return false;
  };
  if (NumLimbs < 2)
    return Fail("need at least two limbs (one limb is plain modular "
                "arithmetic)");
  if (O.LimbBits < 30 || O.LimbBits > 62)
    return Fail(formatv("limb bits %u outside [30, 62]", O.LimbBits));
  if (O.TwoAdicity + 2 > O.LimbBits)
    return Fail("two-adicity leaves no room for the prime search");

  Out = RnsContext();
  Out.Opts = O;
  // Distinct primes of one common width: walk the deterministic
  // nttPrime seed space and drop duplicates, so a (NumLimbs, Options)
  // pair always names the same base in every process.
  std::uint64_t Seed = O.Seed;
  while (Out.Limbs.size() < NumLimbs) {
    Bignum Q = field::nttPrime(O.LimbBits, O.TwoAdicity, Seed++);
    if (std::find(Out.Limbs.begin(), Out.Limbs.end(), Q) ==
        Out.Limbs.end())
      Out.Limbs.push_back(Q);
  }

  Out.initDerived();
  return true;
}

void RnsContext::initDerived() {
  M = Bignum(1);
  for (const Bignum &Q : Limbs)
    M = M * Q;
  WideWords = (M.bitWidth() + 63) / 64;

  Weights.clear();
  WeightWords.clear();
  for (const Bignum &Q : Limbs) {
    Bignum Mi = M / Q;
    Bignum W = (Mi * (Mi % Q).invMod(Q)) % M;
    Weights.push_back(W);
    WeightWords.push_back(packWordsMsbFirst(W, WideWords));
  }
  // Every context (created or view) roots its own cache: ownership runs
  // strictly downward (context -> cache -> views -> their caches), so
  // there is never a shared_ptr cycle and a whole view chain dies with
  // the context that spawned it.
  Cache = std::make_shared<ChainCache>();
}

const RnsContext &RnsContext::subChain(size_t NumLimbs) const {
  assert(NumLimbs >= 1 && NumLimbs <= Limbs.size() &&
         "subChain: limb count outside [1, numLimbs()]");
  if (NumLimbs == Limbs.size())
    return *this;
  std::lock_guard<std::mutex> Lock(Cache->Mu);
  std::unique_ptr<RnsContext> &Slot = Cache->Views[NumLimbs];
  if (!Slot) {
    // Built directly from the limb prefix, not through create(): the
    // prime walk already happened (views share the parent's primes by
    // construction) and a one-limb view is legal here.
    Slot.reset(new RnsContext());
    Slot->Opts = Opts;
    Slot->Limbs.assign(Limbs.begin(), Limbs.begin() + NumLimbs);
    Slot->initDerived();
  }
  return *Slot;
}

std::vector<std::uint64_t> RnsContext::encode(const Bignum &X) const {
  std::vector<std::uint64_t> R;
  R.reserve(Limbs.size());
  for (const Bignum &Q : Limbs)
    R.push_back((X % Q).low64());
  return R;
}

Bignum RnsContext::decode(const std::uint64_t *Residues,
                          size_t Stride) const {
  Bignum Acc(0);
  for (size_t L = 0; L < Limbs.size(); ++L)
    Acc = (Acc + Weights[L] * Bignum(Residues[L * Stride])) % M;
  return Acc;
}
