//===- runtime/KernelRegistry.cpp - Compiled-plan cache -------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRegistry.h"

#include "codegen/GridEmitter.h"
#include "codegen/VectorEmitter.h"
#include "kernels/NttKernels.h"
#include "kernels/ScalarKernels.h"
#include "runtime/Backend.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace moma;
using namespace moma::runtime;

// Per-plan extra driver flags for vector artifacts: the lane loops only
// pay off when the host compiler vectorizes them, so they compile at -O3
// with the native ISA when the configure-time probe found -march=native
// usable (CMake defines the macro either way; -O3 alone is the fallback).
#ifndef MOMA_VEC_EXTRA_FLAGS
#define MOMA_VEC_EXTRA_FLAGS "-O3"
#endif

namespace {

ir::Kernel buildOpKernel(const PlanKey &Key) {
  kernels::ScalarKernelSpec Spec{Key.ContainerBits, Key.ModBits,
                                 Key.Opts.Red};
  switch (Key.Op) {
  case KernelOp::AddMod:
    return kernels::buildAddModKernel(Spec);
  case KernelOp::SubMod:
    return kernels::buildSubModKernel(Spec);
  case KernelOp::MulMod:
    return kernels::buildMulModKernel(Spec);
  case KernelOp::Butterfly:
    return kernels::buildButterflyKernel(Spec);
  case KernelOp::Axpy:
    return kernels::buildAxpyKernel(Spec);
  case KernelOp::RnsDecompose:
    return kernels::buildRnsDecomposeKernel(Spec, Key.WideWords);
  case KernelOp::RnsRecombineStep:
    return kernels::buildRnsRecombineStepKernel(Spec);
  case KernelOp::RnsRescaleStep:
    return kernels::buildRnsRescaleStepKernel(Spec);
  }
  moma_unreachable("unknown kernel op");
}

/// The RNS CRT edge kernels mix port widths by design (a wide element on
/// one side, a single-word limb residue on the other); every other op
/// keeps the uniform elemWords ABI.
bool kernelOpMixesWidths(KernelOp Op) {
  return Op == KernelOp::RnsDecompose || Op == KernelOp::RnsRecombineStep;
}

/// Calls \p Fn with \p Args.size() pointer arguments. The emitted-kernel
/// ABI is void(f)(port0*, port1*, ...); arities cover every runtime
/// kernel shape (butterfly/montgomery peaks at 8 ports).
bool callPorts(void *Fn, void *const *A, size_t N) {
  using P = void *;
  switch (N) {
  case 3:
    reinterpret_cast<void (*)(P, P, P)>(Fn)(A[0], A[1], A[2]);
    return true;
  case 4:
    reinterpret_cast<void (*)(P, P, P, P)>(Fn)(A[0], A[1], A[2], A[3]);
    return true;
  case 5:
    reinterpret_cast<void (*)(P, P, P, P, P)>(Fn)(A[0], A[1], A[2], A[3],
                                                  A[4]);
    return true;
  case 6:
    reinterpret_cast<void (*)(P, P, P, P, P, P)>(Fn)(A[0], A[1], A[2], A[3],
                                                     A[4], A[5]);
    return true;
  case 7:
    reinterpret_cast<void (*)(P, P, P, P, P, P, P)>(Fn)(A[0], A[1], A[2],
                                                        A[3], A[4], A[5],
                                                        A[6]);
    return true;
  case 8:
    reinterpret_cast<void (*)(P, P, P, P, P, P, P, P)>(Fn)(
        A[0], A[1], A[2], A[3], A[4], A[5], A[6], A[7]);
    return true;
  default:
    return false;
  }
}

} // namespace

bool moma::runtime::callPlan(const CompiledPlan &P, void *const *Ports) {
  return P.Fn && callPorts(P.Fn, Ports, P.numPorts());
}

bool moma::runtime::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "runBatch: " + Msg;
    return false;
  };
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return Fail(formatv("plan compiled for the %s backend; route it "
                        "through its ExecutionBackend",
                        rewrite::execBackendName(P.Key.Opts.Backend)));
  if (Args.Outs.size() != P.NumOutputs)
    return Fail(formatv("expected %u output arrays, got %zu", P.NumOutputs,
                        Args.Outs.size()));
  if (Args.Ins.size() != P.NumDataInputs)
    return Fail(formatv("expected %u input arrays, got %zu", P.NumDataInputs,
                        Args.Ins.size()));
  if (!Args.InStrides.empty() && Args.InStrides.size() != Args.Ins.size())
    return Fail("InStrides must be empty or match Ins");
  if (Args.Aux.size() != P.AuxWords.size())
    return Fail(formatv("expected %zu broadcast aux arrays, got %zu",
                        P.AuxWords.size(), Args.Aux.size()));

  size_t NumPorts = P.numPorts();
  void *Ports[8];
  if (NumPorts > 8 || !P.Fn)
    return Fail("unsupported plan shape");

  for (size_t I = 0; I < N; ++I) {
    size_t Slot = 0;
    for (std::uint64_t *Out : Args.Outs)
      Ports[Slot++] = Out + I * P.ElemWords;
    for (size_t J = 0; J < Args.Ins.size(); ++J) {
      size_t Stride =
          Args.InStrides.empty() ? P.ElemWords : Args.InStrides[J];
      Ports[Slot++] =
          const_cast<std::uint64_t *>(Args.Ins[J] + I * Stride);
    }
    for (const std::uint64_t *A : Args.Aux)
      Ports[Slot++] = const_cast<std::uint64_t *>(A);
    if (!callPorts(P.Fn, Ports, NumPorts))
      return Fail(formatv("unsupported arity %zu", NumPorts));
  }
  return true;
}

std::vector<std::uint64_t> moma::runtime::packWordsMsbFirst(const mw::Bignum &V,
                                                            unsigned Words) {
  assert(V.bitWidth() <= Words * 64 && "value does not fit its port");
  std::vector<std::uint64_t> Out(Words);
  for (unsigned I = 0; I < Words; ++I)
    Out[I] = V.limb(Words - 1 - I);
  return Out;
}

mw::Bignum moma::runtime::unpackWordsMsbFirst(const std::uint64_t *W,
                                              unsigned Words) {
  mw::Bignum Acc;
  for (unsigned I = 0; I < Words; ++I)
    Acc = (Acc << 64) + mw::Bignum(W[I]);
  return Acc;
}

PlanAux moma::runtime::makePlanAux(const CompiledPlan &P,
                                   const mw::Bignum &Q) {
  assert(Q.bitWidth() == P.Key.ModBits && "modulus width must match plan");
  PlanAux Aux;
  size_t QAt = P.Lowered.Inputs.size() - P.AuxWords.size();
  for (size_t I = 0; I < P.AuxWords.size(); ++I) {
    const std::string &Name = P.Lowered.Inputs[QAt + I].Name;
    mw::Bignum V;
    if (Name == "q") {
      V = Q;
    } else if (Name == "mu") {
      V = mw::Bignum::powerOfTwo(2 * P.Key.ModBits + 3) / Q;
    } else if (Name == "qinv") {
      assert(Q.isOdd() && "Montgomery plans need an odd modulus");
      mw::Bignum R = mw::Bignum::powerOfTwo(P.Key.ContainerBits);
      V = R - Q.invMod(R);
    } else if (Name == "r2") {
      mw::Bignum R = mw::Bignum::powerOfTwo(P.Key.ContainerBits);
      V = (R * R) % Q;
    } else if (Name == "gmu") {
      // The RNS decompose kernel's generalized Barrett constant: the
      // shift is the container width itself (the reduction takes the
      // full product's high half), so gmu = floor(2^lambda / q).
      V = mw::Bignum::powerOfTwo(P.Key.ContainerBits) / Q;
    } else {
      fatalError("makePlanAux: unknown auxiliary port '" + Name + "'");
    }
    Aux.Buffers.push_back(packWordsMsbFirst(V, P.AuxWords[I]));
  }
  return Aux;
}

KernelRegistry::KernelRegistry(jit::HostJitOptions JitOpts)
    : Jit(std::move(JitOpts)), Profile(sim::deviceHostDefault()),
      Serial(new SerialBackend()) {}

KernelRegistry::~KernelRegistry() {
  // Stop the recovery-probe thread before any member it touches goes
  // away; probes in flight finish their get() first.
  std::thread Probe;
  {
    std::lock_guard<std::mutex> L(ProbeMu);
    ProbeStop = true;
    Probe = std::move(ProbeThread);
  }
  ProbeCv.notify_all();
  if (Probe.joinable())
    Probe.join();
}

ExecutionBackend &KernelRegistry::backendFor(const PlanKey &Key) {
  if (Key.Opts.Backend == rewrite::ExecBackend::SimGpu) {
    std::lock_guard<std::mutex> L(BackendMu);
    if (!SimGpu)
      SimGpu.reset(new SimGpuBackend(Profile));
    return *SimGpu;
  }
  if (Key.Opts.Backend == rewrite::ExecBackend::Vector) {
    std::lock_guard<std::mutex> L(BackendMu);
    if (!Vector)
      Vector.reset(new VectorBackend());
    return *Vector;
  }
  if (Key.Opts.Backend == rewrite::ExecBackend::Interp) {
    std::lock_guard<std::mutex> L(BackendMu);
    if (!Interp)
      Interp.reset(new InterpBackend());
    return *Interp;
  }
  return *Serial;
}

void KernelRegistry::setRetryPolicy(const RetryPolicy &P) {
  std::lock_guard<std::mutex> L(Mu);
  Retry = P;
  if (Retry.MaxAttempts == 0)
    Retry.MaxAttempts = 1;
  if (Retry.BackoffMultiplier == 0)
    Retry.BackoffMultiplier = 1;
}

KernelRegistry::RetryPolicy KernelRegistry::retryPolicy() const {
  std::lock_guard<std::mutex> L(Mu);
  return Retry;
}

void KernelRegistry::setNegativeTtlUs(std::uint64_t Us) {
  std::lock_guard<std::mutex> L(Mu);
  NegativeTtlUs = Us;
  if (Us == 0)
    Negative.clear();
}

bool KernelRegistry::degraded() const {
  std::lock_guard<std::mutex> L(Mu);
  return !Degraded.empty();
}

std::vector<std::string> KernelRegistry::degradedKeys() const {
  std::lock_guard<std::mutex> L(Mu);
  return std::vector<std::string>(Degraded.begin(), Degraded.end());
}

void KernelRegistry::setDeviceProfile(const sim::DeviceProfile &P) {
  std::lock_guard<std::mutex> L(BackendMu);
  Profile = P;
  SimGpu.reset(); // rebuilt lazily against the new profile
}

KernelRegistry::Stats KernelRegistry::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return S;
}

void KernelRegistry::setCacheCap(size_t Max) {
  std::lock_guard<std::mutex> L(Mu);
  CacheCap = std::max<size_t>(1, Max);
  evictLocked();
}

size_t KernelRegistry::cacheCap() const {
  std::lock_guard<std::mutex> L(Mu);
  return CacheCap;
}

size_t KernelRegistry::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Plans.size();
}

void KernelRegistry::evictLocked() {
  // O(n) min-scan on the LastUse tick, the Dispatcher's bounded-cache
  // idiom. Dispatch batches in flight hold the plan shared_ptr, so
  // eviction never invalidates running work — the registry just forgets
  // the plan and the next request rebuilds it (typically a HostJit disk
  // hit, not a recompile).
  while (Plans.size() > CacheCap) {
    auto Victim = Plans.begin();
    for (auto It = Plans.begin(); It != Plans.end(); ++It)
      if (It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    Plans.erase(Victim);
    ++S.Evictions;
  }
}

std::shared_ptr<const CompiledPlan> KernelRegistry::get(const PlanKey &Key) {
  Err.clear();
  std::string K = Key.str();

  // Fast path, negative cache, and single-flight admission under one lock.
  std::shared_ptr<Flight> F;
  bool Leader = false;
  RetryPolicy RP;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Plans.find(K);
    if (It != Plans.end()) {
      ++S.Hits;
      It->second.LastUse = ++UseTick;
      return It->second.Plan;
    }
    // A terminally-failed key fast-fails until its TTL passes: a hot
    // broken kernel must not convoy every worker thread through a doomed
    // compile-and-retry sequence (the re-stampede fix).
    auto NIt = Negative.find(K);
    if (NIt != Negative.end()) {
      if (std::chrono::steady_clock::now() < NIt->second.Until) {
        ++S.NegativeHits;
        std::string Msg = NIt->second.Error;
        Err.set(Msg);
        return nullptr;
      }
      Negative.erase(NIt);
    }
    auto FIt = InFlight.find(K);
    if (FIt != InFlight.end()) {
      F = FIt->second;
    } else {
      F = std::make_shared<Flight>();
      InFlight.emplace(K, F);
      Leader = true;
    }
    RP = Retry;
  }

  if (!Leader) {
    // Another thread is building this key: wait and share its result, so
    // N threads racing on a cold key cost one rewrite pipeline and one
    // compiler invocation total — and one retry/backoff sequence on
    // transient failure, not N.
    std::unique_lock<std::mutex> FL(F->M);
    F->CV.wait(FL, [&] { return F->Done; });
    if (!F->Plan) {
      Err.set(F->Error);
      return nullptr;
    }
    std::lock_guard<std::mutex> L(Mu);
    ++S.Hits;
    return F->Plan;
  }

  // Leader: snapshot the profile bound the build validates against, run
  // the pipeline with no registry locks held — retrying transient
  // failures with bounded exponential backoff — then publish and wake
  // followers.
  unsigned MaxTPB;
  {
    std::lock_guard<std::mutex> L(BackendMu);
    MaxTPB = Profile.MaxThreadsPerBlock;
  }
  std::string Error;
  std::shared_ptr<CompiledPlan> P;
  std::uint64_t BackoffUs = RP.InitialBackoffUs;
  for (unsigned Attempt = 1;; ++Attempt) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++S.Attempts;
    }
    bool Transient = false;
    Error.clear();
    P = build(Key, MaxTPB, Error, Transient);
    if (P || !Transient || Attempt >= RP.MaxAttempts)
      break;
    {
      std::lock_guard<std::mutex> L(Mu);
      ++S.Retries;
    }
    if (BackoffUs > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(BackoffUs));
    BackoffUs = std::min<std::uint64_t>(
        BackoffUs * RP.BackoffMultiplier, RP.MaxBackoffUs);
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    if (P) {
      ++S.Builds;
      Plans[K] = Entry{P, ++UseTick};
      Degraded.erase(K);
      Negative.erase(K);
      evictLocked();
    } else {
      ++S.FailedBuilds;
      Degraded.insert(K);
      if (NegativeTtlUs > 0)
        Negative[K] =
            NegativeEntry{Error, std::chrono::steady_clock::now() +
                                     std::chrono::microseconds(NegativeTtlUs)};
    }
    InFlight.erase(K);
  }
  {
    std::lock_guard<std::mutex> FL(F->M);
    F->Done = true;
    F->Plan = P;
    F->Error = Error;
  }
  F->CV.notify_all();
  if (!P)
    Err.set(Error);
  return P;
}

std::shared_ptr<const CompiledPlan>
KernelRegistry::tryPromote(const PlanKey &Key) {
  std::string K = Key.str();
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Plans.find(K);
    if (It != Plans.end()) {
      ++S.Hits;
      It->second.LastUse = ++UseTick;
      return It->second.Plan;
    }
    // Inside the negative TTL the failure is still fresh; don't churn.
    auto NIt = Negative.find(K);
    if (NIt != Negative.end() &&
        std::chrono::steady_clock::now() < NIt->second.Until)
      return nullptr;
    // A build or probe is already running; its result will land in Plans.
    if (InFlight.count(K))
      return nullptr;
  }
  enqueueProbe(Key);
  return nullptr;
}

void KernelRegistry::enqueueProbe(const PlanKey &Key) {
  std::lock_guard<std::mutex> L(ProbeMu);
  if (ProbeStop || !ProbeQueued.insert(Key.str()).second)
    return;
  ProbeQueue.push_back(Key);
  if (!ProbeThread.joinable())
    ProbeThread = std::thread([this] { probeLoop(); });
  ProbeCv.notify_one();
}

void KernelRegistry::probeLoop() {
  for (;;) {
    PlanKey Key;
    {
      std::unique_lock<std::mutex> L(ProbeMu);
      ProbeCv.wait(L, [&] { return ProbeStop || !ProbeQueue.empty(); });
      if (ProbeStop)
        return;
      Key = ProbeQueue.front();
      ProbeQueue.pop_front();
      ProbeQueued.erase(Key.str());
    }
    {
      std::lock_guard<std::mutex> L(Mu);
      ++S.Probes;
    }
    // A plain get(): success publishes the plan (clearing the degraded
    // mark), failure refreshes the negative entry, and either way the
    // next tryPromote sees the fresh state.
    get(Key);
  }
}

std::shared_ptr<CompiledPlan> KernelRegistry::build(const PlanKey &Key,
                                                    unsigned MaxTPB,
                                                    std::string &Error,
                                                    bool &Transient) {
  // Everything up to the JIT handoff is deterministic validation and pure
  // rewriting: failures there are permanent (retrying cannot help).
  Transient = false;
  if (Key.Opts.TargetWordBits != 64) {
    // The flat-batch ABI is 64-bit words; 16/32-bit lowerings remain
    // available through the direct emitters.
    Error = "KernelRegistry: batched dispatch requires 64-bit words";
    return nullptr;
  }
  if (Key.ModBits + 4 > Key.ContainerBits) {
    Error = formatv("KernelRegistry: modulus (%u bits) does not fit "
                    "container (%u bits) with four free top bits",
                    Key.ModBits, Key.ContainerBits);
    return nullptr;
  }

  bool IsSimGpu = Key.Opts.Backend == rewrite::ExecBackend::SimGpu;
  bool IsVector = Key.Opts.Backend == rewrite::ExecBackend::Vector;
  if (IsSimGpu && (Key.Opts.BlockDim == 0 || Key.Opts.BlockDim > MaxTPB)) {
    // The CUDA rule the paper relies on (5.1): at most MaxThreadsPerBlock
    // = 1024 threads per block. Checked at plan build so a bad geometry
    // is a clean error instead of a launch abort.
    Error = formatv("KernelRegistry: block dimension %u outside "
                    "[1, %u] for the sim-GPU backend",
                    Key.Opts.BlockDim, MaxTPB);
    return nullptr;
  }
  if (IsVector && (Key.Opts.VectorWidth == 0 || Key.Opts.VectorWidth > 64)) {
    // Checked at plan build like the block dimension: a lane count must
    // be present (PlanKey::forModulus defaults it to 8) and sane. Widths
    // above the emitted chunk set still run (scalar tail), but past 64
    // lanes the request is a unit error, not a tuning choice.
    Error = formatv("KernelRegistry: lane count %u outside [1, 64] for "
                    "the vector backend",
                    Key.Opts.VectorWidth);
    return nullptr;
  }

  // The injected stand-in for "the build machinery itself is broken"
  // (registry-level chaos testing, distinct from the JIT's own sites).
  // Classified transient: real analogues are resource exhaustion.
  if (support::faultShouldFail("registry.build")) {
    Error = "KernelRegistry: fault injected at registry.build";
    Transient = true;
    return nullptr;
  }

  auto P = std::make_shared<CompiledPlan>();
  P->Key = Key;
  ir::Kernel K = buildOpKernel(Key);
  K.Name = formatv("%s_c%u_m%u", K.Name.c_str(), Key.ContainerBits,
                   Key.ModBits);
  if (Key.WideWords)
    K.Name += formatv("_W%u", Key.WideWords);
  P->Lowered = rewrite::lowerWithPlan(K, Key.Opts);

  // Port layout: outputs, per-element data inputs, then the broadcast
  // tail starting at the modulus port. Derived from the lowered kernel
  // alone, so it runs before any backend-specific work and the interp
  // path below can return without touching the JIT.
  P->NumOutputs = static_cast<unsigned>(P->Lowered.Outputs.size());
  P->ElemWords = (Key.ModBits + 63) / 64;
  size_t QAt = P->Lowered.Inputs.size();
  for (size_t I = 0; I < P->Lowered.Inputs.size(); ++I)
    if (P->Lowered.Inputs[I].Name == "q") {
      QAt = I;
      break;
    }
  if (QAt == P->Lowered.Inputs.size()) {
    Error = "KernelRegistry: kernel has no modulus port";
    return nullptr;
  }
  P->NumDataInputs = static_cast<unsigned>(QAt);
  for (size_t I = QAt; I < P->Lowered.Inputs.size(); ++I)
    P->AuxWords.push_back(P->Lowered.Inputs[I].storedWords());
  for (const rewrite::LoweredPort &Port : P->Lowered.Outputs)
    if (Port.storedWords() != P->ElemWords) {
      Error = "KernelRegistry: output port width mismatch";
      return nullptr;
    }
  // The RNS CRT kernels mix widths on the input side by design (wide
  // element vs word-sized residue); their drivers always dispatch with
  // explicit per-input strides, so the uniform check is skipped there.
  if (!kernelOpMixesWidths(Key.Op))
    for (size_t I = 0; I < QAt; ++I)
      if (P->Lowered.Inputs[I].storedWords() != P->ElemWords) {
        Error = "KernelRegistry: data input port width mismatch";
        return nullptr;
      }
  // The 8-port bound is the serial callPorts arity limit; the grid ABI
  // passes port arrays but shares it for the serial stage fallback, and
  // the interp walkers reuse the same 8-slot port frames.
  if (P->numPorts() > 8) {
    Error = "KernelRegistry: unsupported port shape";
    return nullptr;
  }

  if (Key.Opts.Backend == rewrite::ExecBackend::Interp) {
    // The terminal-fallback artifact: no emit, no compile, no dlopen —
    // the scalar kernel itself is the executable, run per element by
    // InterpBackend through ir::interpret. Nothing on this path can fail
    // transiently, which is the property the degradation ladder rests
    // on. The lowered kernel is still the port-layout source of truth
    // (stored word counts, aux tail) shared with every compiled backend.
    P->InterpKernel = std::make_shared<ir::Kernel>(std::move(K));
    return P;
  }

  std::string StageSymbol, FusedSymbol;
  if (IsVector) {
    // SIMD lane-loop artifact. The lane count — and, for butterfly
    // kernels, the stage-fusion depth — are runtime launch parameters of
    // the vector ABI, so plans differing only in VectorWidth or FuseDepth
    // share one module through HostJit's source-identity dedup while
    // remaining distinct cache entries.
    codegen::EmittedVectorKernel V = codegen::emitVectorC(P->Lowered);
    P->Emitted.Source = std::move(V.Source);
    P->Emitted.Symbol = V.VecSymbol;
    P->Emitted.Ports = std::move(V.Ports);
    StageSymbol = V.StageSymbol;
    FusedSymbol = V.FusedSymbol;
  } else if (IsSimGpu) {
    // Grid-shaped artifact (paper 5.1 thread mapping as host-JIT C). The
    // block dimension — and, for butterfly kernels, the stage-fusion
    // depth — are runtime launch parameters of the grid ABI, so plans
    // differing only in BlockDim or FuseDepth share one module through
    // HostJit's source-identity dedup while remaining distinct cache
    // entries.
    codegen::EmittedGridKernel G = codegen::emitGridC(P->Lowered);
    P->Emitted.Source = std::move(G.Source);
    P->Emitted.Symbol = G.GridSymbol;
    P->Emitted.Ports = std::move(G.Ports);
    StageSymbol = G.StageSymbol;
    FusedSymbol = G.FusedSymbol;
  } else {
    P->Emitted = codegen::emitC(P->Lowered);
  }

  // Vector artifacts carry per-plan extra flags: the JIT's default -O1
  // keeps plan builds fast, but the lane loops need the optimizer (and
  // the native ISA when available) to actually turn into SIMD. The flags
  // are part of HostJit's content hash and in-memory key, so the -O1 and
  // -O3 worlds never serve each other's objects.
  P->Module = Jit.load(P->Emitted.Source,
                       IsVector ? MOMA_VEC_EXTRA_FLAGS : "");
  if (!P->Module) {
    // Compiler and loader trouble is the canonical transient failure
    // class (crashed cc, full /tmp, OOM killer): retry with backoff.
    Error = "KernelRegistry: " + Jit.error();
    Transient = true;
    return nullptr;
  }
  // Symbol lookups carry the dlerror() diagnostic: a stripped or
  // mis-emitted module reports the loader's reason, not a bare "missing".
  std::string DlErr;
  void *EntryFn = P->Module->symbol(P->Emitted.Symbol, &DlErr);
  if (!EntryFn) {
    Error = formatv("KernelRegistry: symbol '%s' missing from %s: %s",
                    P->Emitted.Symbol.c_str(), P->Module->soPath().c_str(),
                    DlErr.empty() ? "resolved to null" : DlErr.c_str());
    return nullptr;
  }
  if (IsSimGpu || IsVector) {
    (IsVector ? P->VecFn : P->GridFn) = EntryFn;
    for (const auto &Sym :
         {std::make_pair(IsVector ? &P->VecStageFn : &P->StageFn,
                         &StageSymbol),
          std::make_pair(IsVector ? &P->VecFusedFn : &P->FusedFn,
                         &FusedSymbol)}) {
      if (Sym.second->empty())
        continue;
      *Sym.first = P->Module->symbol(*Sym.second, &DlErr);
      if (!*Sym.first) {
        Error = formatv("KernelRegistry: symbol '%s' missing from %s: %s",
                        Sym.second->c_str(), P->Module->soPath().c_str(),
                        DlErr.empty() ? "resolved to null" : DlErr.c_str());
        return nullptr;
      }
    }
  } else {
    P->Fn = EntryFn;
  }

  // The emitted signature must agree with the lowered port layout
  // computed above.
  if (P->numPorts() != P->Emitted.Ports.size()) {
    Error = "KernelRegistry: unsupported port shape";
    return nullptr;
  }
  return P;
}
