//===- rewrite/Simplify.h - Folding, pruning, DCE -------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization companion of the lowering pass. The paper's key
/// non-power-of-two optimization (§4): when a λ-bit input lives in a 2ω-bit
/// container, the statically-zero words introduced by rule (19) cascade
/// through the rewrite rules; this pass folds them away ("pruning no-ops
/// during code generation"). Concretely:
///
///  * constant folding across all opcodes (Bignum semantics),
///  * algebraic identities (x+0, x*0, x*1, select on a constant, ...),
///  * KnownBits strength reduction: carries that cannot fire become
///    constants, multiplies whose product fits the low word drop their
///    high half, right shifts past the significant bits fold to zero,
///  * copy propagation and dead code elimination.
///
/// Repeated application runs to a fixed point (simplifyToFixpoint).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_SIMPLIFY_H
#define MOMA_REWRITE_SIMPLIFY_H

#include "ir/Ir.h"
#include "rewrite/Lower.h"

#include <vector>

namespace moma {
namespace rewrite {

/// Counters describing what one simplify() application did.
struct SimplifyStats {
  unsigned FoldedConst = 0;      ///< statements folded to constants
  unsigned Identities = 0;       ///< algebraic identities applied
  unsigned StrengthReduced = 0;  ///< KnownBits-based reductions
  unsigned CopiesPropagated = 0; ///< copies removed
  unsigned DeadRemoved = 0;      ///< statements removed by DCE

  unsigned total() const {
    return FoldedConst + Identities + StrengthReduced + CopiesPropagated +
           DeadRemoved;
  }
};

/// One rewrite-and-DCE sweep over \p K (in place). When \p SubstOut is
/// non-null it receives the old-value -> new-value substitution so callers
/// holding value references (e.g. LoweredKernel ports) can follow along.
SimplifyStats simplify(ir::Kernel &K,
                       std::vector<ir::ValueId> *SubstOut = nullptr);

/// Applies simplify() until nothing changes; returns the accumulated stats.
SimplifyStats simplifyToFixpoint(ir::Kernel &K, unsigned MaxIters = 32);

/// simplifyToFixpoint over a lowered kernel, keeping the port word
/// mappings consistent across the rebuilds.
SimplifyStats simplifyLowered(LoweredKernel &L, unsigned MaxIters = 32);

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_SIMPLIFY_H
