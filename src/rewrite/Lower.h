//===- rewrite/Lower.h - MoMA recursive lowering pass ---------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (§4, Table 1): a rewrite system on data
/// types that recursively decomposes operations on 2ω-bit values into
/// operations on ω-bit values until every width is natively supported.
///
/// Each round of lowerOneLevel treats the current maximal width as the
/// "double word" and splits every value of that width into [hi, lo] halves
/// (rule 19), rewriting each statement with the matching rule:
///
///   Add     -> rules (22)(23): two half adds chained through the carry
///   Sub     -> rule (25): two half subs chained through the borrow
///   Mul     -> rule (28)+(29) schoolbook, or Eq. (9) Karatsuba
///   AddMod  -> rules (22)(24)(25)(26): add, compare, subtract, select
///   SubMod  -> rule (25) + conditional add-back (Listing 2 _dsubmod)
///   MulMod  -> the Barrett sequence of Listing 4: full multiply, quad
///              shift by m-2, multiply by mu, shift by m+5, low multiply
///              by q, subtract, compare, select
///   Lt      -> rule (26),  Eq -> rule (27),  Const/Split/Concat -> (19)-(21)
///   Shl/Shr/Select/And/Or/Xor/Zext -> the induced half-wise forms
///
/// Statically-zero hi halves of inputs (non-power-of-two widths embedded in
/// power-of-two containers, §4 Eq. 35/36) become constants instead of
/// parameters; the Simplify pass then prunes the operations they feed.
///
/// lowerToWords drives rounds until maxBits <= TargetWordBits and reports,
/// for every original input/output, its word decomposition (most
/// significant first, the paper's bracket order).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_LOWER_H
#define MOMA_REWRITE_LOWER_H

#include "ir/Ir.h"
#include "mw/MWUInt.h"

#include <string>
#include <vector>

namespace moma {
namespace rewrite {

/// Lowering configuration.
struct LowerOptions {
  /// The machine word width ω₀. 64 on the host; 16/32 exercise the deep
  /// recursion the paper targets for small-word accelerators (§7).
  unsigned TargetWordBits = 64;
  /// Which double-word multiplication rule to apply (§2.2, Fig. 5b).
  mw::MulAlgorithm MulAlg = mw::MulAlgorithm::Schoolbook;
};

/// Word-level decomposition of one original kernel input or output.
struct LoweredPort {
  std::string Name;
  unsigned ContainerBits = 0; ///< original storage width
  unsigned KnownBits = 0;     ///< original significant-bit bound
  unsigned WordBits = 0;      ///< ω₀ of the lowering
  /// All container words, most significant first (paper subscript order).
  std::vector<ir::ValueId> Words;
  /// Parallel to Words: true for statically-zero pruned words (constants
  /// in the body rather than kernel parameters).
  std::vector<bool> IsConstZero;

  /// Parallel to Words when non-empty (the deadports pass fills it): words
  /// no live statement reads. They keep their slot in the port ABI —
  /// storedWords() and the caller-side array layout are unchanged — but
  /// the emitters skip their loads and scalar parameters.
  std::vector<bool> IsDead;

  /// Whether word \p I was marked dead by the deadports pass.
  bool isDeadWord(size_t I) const {
    return I < IsDead.size() && IsDead[I];
  }

  /// Number of machine words actually stored (ceil(KnownBits / WordBits)),
  /// the paper's k with (k-1)ω₀ < λ <= kω₀.
  unsigned storedWords() const {
    return (KnownBits + WordBits - 1) / WordBits;
  }
};

/// Result of the full recursive lowering.
struct LoweredKernel {
  ir::Kernel K;
  std::vector<LoweredPort> Inputs;
  std::vector<LoweredPort> Outputs;
  unsigned Rounds = 0;

  /// Significant-bit bounds the lowering proved for individual word values
  /// but could not keep in their ValueInfo without changing the emitted
  /// kernel: (value, B) means value < 2^B, and B == 0 means the word is
  /// provably zero. Splitting a value whose scalar-level KnownBits is
  /// tighter than its width (a mulmod result known < q, the RNS
  /// decomposition's manual "r < 3q" annotation) produces half values
  /// whose own KnownBits formulas cannot carry the fact; the bounds are
  /// recorded here instead. Only the interval range-analysis pass consumes
  /// the table, so pipelines without it behave exactly as if it were
  /// empty. PassPipeline keeps the ids current across pass rebuilds.
  std::vector<std::pair<ir::ValueId, unsigned>> WordBounds;
};

/// Applies one rewrite round at the kernel's current maximal width.
/// Exposed for the rule-by-rule tests; most callers want lowerToWords.
/// \p PairsOut, when non-null, receives old-value -> (hi, lo) mappings for
/// values of the lowered width and old -> new for the rest (lo == NoValue).
ir::Kernel lowerOneLevel(const ir::Kernel &K, const LowerOptions &Opts,
                         std::vector<std::pair<ir::ValueId, ir::ValueId>>
                             *PairsOut = nullptr);

/// Recursively lowers \p K until every value width is <= TargetWordBits.
LoweredKernel lowerToWords(const ir::Kernel &K, const LowerOptions &Opts = {});

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_LOWER_H
