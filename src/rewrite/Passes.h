//===- rewrite/Passes.h - The rewrite pass catalog ------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete passes behind rewrite/PassManager.h. The first five are
/// the decomposed Simplify monolith — together (in pipeline order) they
/// reproduce its behaviour exactly; each also preserves ir::Interp
/// semantics alone. The last three are new:
///
///  * RangeAnalysisPass — interval propagation (exact [lo, hi] Bignum
///    bounds) through the kernel, generalizing the KnownBits significant-
///    bit bound; kills carries/borrows and folds compares that bit-width
///    reasoning cannot (e.g. the hi word of a full multiply is at most
///    2^w - 2, so accumulating one carry into it can never overflow).
///  * CsePass — value numbering over commutatively-canonicalized
///    statements; repeated subexpressions (fused butterfly bodies sharing
///    a twiddle, duplicated reduction chains) collapse to one.
///  * DeadPortEliminationPass — marks lowered-kernel input port words that
///    no live statement reads, so emitters skip their loads (the port ABI
///    and stored word counts are unchanged).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_PASSES_H
#define MOMA_REWRITE_PASSES_H

#include "rewrite/PassManager.h"

#include <map>

namespace moma {
namespace rewrite {

/// Folds statements whose operands are all constants (Bignum semantics).
class ConstFoldPass : public RebuildPass {
public:
  const char *name() const override { return "constfold"; }

protected:
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
};

/// Algebraic identities: x+0, x-x, x*0, x*1, x&x, x^x, shifts by zero,
/// select on a constant or equal arms, compares of a value with itself.
class AlgebraicIdentitiesPass : public RebuildPass {
public:
  const char *name() const override { return "algebraic"; }

protected:
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
};

/// KnownBits strength reduction: carries that provably cannot fire become
/// constant zero, multiplies whose product fits the low word drop the high
/// half, right shifts past the significant bits fold to zero.
class KnownBitsStrengthReducePass : public RebuildPass {
public:
  const char *name() const override { return "knownbits"; }

protected:
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
};

/// Copy propagation: Copy statements and width-preserving Zext rebind
/// their result to the operand.
class CopyPropPass : public RebuildPass {
public:
  const char *name() const override { return "copyprop"; }

protected:
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
};

/// Dead code elimination: drops statements none of whose results reach an
/// output. Runs in place (value ids are preserved).
class DcePass : public Pass {
public:
  const char *name() const override { return "dce"; }
  PassResult run(ir::Kernel &K, AnalysisCache &AC) override;
};

/// Interval range analysis (see file comment).
class RangeAnalysisPass : public RebuildPass {
public:
  const char *name() const override { return "range"; }

protected:
  void begin(KernelRebuilder &RB) override;
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
  void observeDefault(KernelRebuilder &RB, const ir::Stmt &OldS,
                      const ir::Stmt &NewS) override;

private:
  struct Interval {
    mw::Bignum Lo, Hi; ///< inclusive bounds
  };
  /// The interval of a NEW value id ([v,v] for constants, the KnownBits
  /// box [0, 2^k - 1] when nothing tighter is recorded).
  Interval rangeOf(KernelRebuilder &RB, ir::ValueId NewId) const;
  void setRange(ir::ValueId NewId, Interval I);
  void transfer(KernelRebuilder &RB, const ir::Stmt &NewS);

  /// Applies a LoweredKernel::WordBounds fact to one old statement
  /// result: bound 0 folds a used result to constant zero; a positive
  /// bound tightens the new result's KnownBits (counted only when strict)
  /// and intersects its interval.
  void applyBound(KernelRebuilder &RB, ir::ValueId OldR);
  void applyBounds(KernelRebuilder &RB,
                   const std::vector<ir::ValueId> &OldResults);

  std::vector<Interval> Ranges;
  std::vector<bool> HasRange;
  /// Word bounds (value < 2^B) keyed by ids of the kernel being rebuilt;
  /// loaded in begin() from the pipeline's LoweredKernel, else empty.
  std::unordered_map<ir::ValueId, unsigned> Bounds;
};

/// Cross-statement common subexpression elimination (see file comment).
class CsePass : public RebuildPass {
public:
  const char *name() const override { return "cse"; }

protected:
  void begin(KernelRebuilder &RB) override;
  bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                  const std::vector<ir::ValueId> &Ops,
                  const std::vector<const mw::Bignum *> &CV,
                  bool AllConst) override;
  void observeDefault(KernelRebuilder &RB, const ir::Stmt &OldS,
                      const ir::Stmt &NewS) override;

private:
  using Key = std::vector<std::uint64_t>;
  Key makeKey(const ir::Kernel &Old, const ir::Stmt &S,
              const std::vector<ir::ValueId> &Ops) const;
  std::map<Key, std::vector<ir::ValueId>> Table;
};

/// Dead-port elimination for lowered kernels (see file comment). Requires
/// the pipeline to run over a LoweredKernel; a no-op otherwise.
class DeadPortEliminationPass : public Pass {
public:
  const char *name() const override { return "deadports"; }
  PassResult run(ir::Kernel &K, AnalysisCache &AC) override;
};

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_PASSES_H
