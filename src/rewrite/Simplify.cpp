//===- rewrite/Simplify.cpp - Folding, pruning, DCE ------------------------===//
//
// Thin compatibility wrappers over the pass manager: the historical
// monolithic Rewriter is now the "default" pipeline of rewrite/Passes.h
// (constfold, algebraic, knownbits, copyprop, dce) driven by PassPipeline.
// SimplifyStats maps one counter per decomposed pass.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Simplify.h"

#include "rewrite/PassManager.h"

#include <numeric>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;

/// Folds the per-pass pipeline counters into the legacy counter names.
static SimplifyStats toSimplifyStats(const PipelineStats &PS) {
  SimplifyStats S;
  for (const PassStats &P : PS.PerPass) {
    if (P.Name == "constfold")
      S.FoldedConst += P.Changes;
    else if (P.Name == "algebraic")
      S.Identities += P.Changes;
    else if (P.Name == "knownbits" || P.Name == "range")
      S.StrengthReduced += P.Changes;
    else if (P.Name == "copyprop")
      S.CopiesPropagated += P.Changes;
    else if (P.Name == "dce")
      S.DeadRemoved += P.Removed;
  }
  return S;
}

SimplifyStats moma::rewrite::simplify(Kernel &K,
                                      std::vector<ValueId> *SubstOut) {
  PassPipeline P = defaultPipeline();
  AnalysisCache AC;
  PipelineStats Stats = P.initStats();
  std::vector<ValueId> Subst(K.numValues());
  std::iota(Subst.begin(), Subst.end(), 0);
  P.sweep(K, AC, Stats, &Subst);
  if (SubstOut)
    *SubstOut = std::move(Subst);
  return toSimplifyStats(Stats);
}

SimplifyStats moma::rewrite::simplifyToFixpoint(Kernel &K, unsigned MaxIters) {
  PassPipeline P = defaultPipeline();
  return toSimplifyStats(P.run(K, MaxIters));
}

SimplifyStats moma::rewrite::simplifyLowered(LoweredKernel &L,
                                             unsigned MaxIters) {
  PassPipeline P = defaultPipeline();
  return toSimplifyStats(P.runLowered(L, MaxIters));
}
