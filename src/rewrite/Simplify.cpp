//===- rewrite/Simplify.cpp - Folding, pruning, DCE ------------------------===//

#include "rewrite/Simplify.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using mw::Bignum;

namespace {

/// Rebuilds a kernel statement by statement, folding as it goes.
class Rewriter {
public:
  explicit Rewriter(const Kernel &Old) : Old(Old), Subst(Old.numValues()),
                                         UseCount(Old.numValues(), 0) {
    for (const Stmt &S : Old.Body)
      for (ValueId Op : S.Operands)
        ++UseCount[Op];
    for (const Param &P : Old.outputs())
      ++UseCount[P.Id];
  }

  Kernel run(SimplifyStats &Stats);

  /// Old-value -> new-value map, valid after run().
  const std::vector<ValueId> &substitution() const { return Subst; }

private:
  // -- New-kernel helpers --------------------------------------------------

  ValueId emitConst(unsigned Bits, const Bignum &V) {
    if (V.bitWidth() <= 64) {
      auto Key = std::make_pair(Bits, V.low64());
      auto It = SmallConstCache.find(Key);
      if (It != SmallConstCache.end())
        return It->second;
    }
    ValueId Id = NK.newValue(Bits, "", std::max(1u, V.bitWidth()));
    Stmt S;
    S.Kind = OpKind::Const;
    S.Results = {Id};
    S.Literal = V;
    NK.Body.push_back(std::move(S));
    ConstVals[Id] = V;
    if (V.bitWidth() <= 64)
      SmallConstCache[{Bits, V.low64()}] = Id;
    return Id;
  }

  ValueId newResult(unsigned Bits, unsigned Known) {
    return NK.newValue(Bits, "", std::min(Bits, std::max(1u, Known)));
  }

  Stmt &emit(OpKind Kind, std::vector<ValueId> Results,
             std::vector<ValueId> Operands) {
    Stmt S;
    S.Kind = Kind;
    S.Results = std::move(Results);
    S.Operands = std::move(Operands);
    NK.Body.push_back(std::move(S));
    return NK.Body.back();
  }

  /// The constant value of a (new) id, if it is one.
  const Bignum *constOf(ValueId NewId) const {
    auto It = ConstVals.find(NewId);
    return It == ConstVals.end() ? nullptr : &It->second;
  }

  bool isZero(ValueId NewId) const {
    const Bignum *C = constOf(NewId);
    return C && C->isZero();
  }

  bool isOne(ValueId NewId) const {
    const Bignum *C = constOf(NewId);
    return C && C->isOne();
  }

  unsigned known(ValueId NewId) const { return NK.value(NewId).KnownBits; }
  unsigned widthOf(ValueId NewId) const { return NK.value(NewId).Bits; }

  void bind(ValueId OldId, ValueId NewId) { Subst[OldId] = NewId; }
  void bindConst(ValueId OldId, const Bignum &V) {
    bind(OldId, emitConst(Old.value(OldId).Bits, V));
  }

  void rewriteStmt(const Stmt &S, SimplifyStats &Stats);

  const Kernel &Old;
  Kernel NK;
  std::vector<ValueId> Subst;
  std::vector<unsigned> UseCount;
  std::map<ValueId, Bignum> ConstVals;
  std::map<std::pair<unsigned, std::uint64_t>, ValueId> SmallConstCache;
};

} // namespace

void Rewriter::rewriteStmt(const Stmt &S, SimplifyStats &Stats) {
  // Map operands into the new kernel.
  std::vector<ValueId> Ops;
  Ops.reserve(S.Operands.size());
  for (ValueId Id : S.Operands)
    Ops.push_back(Subst[Id]);

  // Collect constant operands (nullptr when not constant).
  std::vector<const Bignum *> CV;
  CV.reserve(Ops.size());
  bool AllConst = true;
  for (ValueId Id : Ops) {
    CV.push_back(constOf(Id));
    AllConst &= CV.back() != nullptr;
  }

  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };

  switch (S.Kind) {
  case OpKind::Const:
    bindConst(S.Results[0], S.Literal);
    return;
  case OpKind::Copy:
    bind(S.Results[0], Ops[0]);
    ++Stats.CopiesPropagated;
    return;
  case OpKind::Zext: {
    if (CV[0]) {
      bindConst(S.Results[0], *CV[0]);
      ++Stats.FoldedConst;
      return;
    }
    if (widthOf(Ops[0]) == ResultBits(0)) {
      bind(S.Results[0], Ops[0]);
      ++Stats.CopiesPropagated;
      return;
    }
    ValueId R = newResult(ResultBits(0), known(Ops[0]));
    emit(OpKind::Zext, {R}, {Ops[0]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Add: {
    unsigned W = ResultBits(1);
    bool HasCin = Ops.size() == 3;
    if (AllConst) {
      Bignum Sum = *CV[0] + *CV[1] + (HasCin ? *CV[2] : Bignum(0));
      bindConst(S.Results[0], Sum >> W);
      bindConst(S.Results[1], Sum.truncate(W));
      ++Stats.FoldedConst;
      return;
    }
    bool CinZero = !HasCin || isZero(Ops[2]);
    // x + 0 (+0) => x, carry 0.
    if (CinZero && isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      bind(S.Results[1], Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (CinZero && isZero(Ops[0])) {
      bindConst(S.Results[0], Bignum(0));
      bind(S.Results[1], Ops[1]);
      ++Stats.Identities;
      return;
    }
    // 0 + 0 + cin => zext(cin), carry 0.
    if (isZero(Ops[0]) && isZero(Ops[1]) && HasCin) {
      bindConst(S.Results[0], Bignum(0));
      ValueId R = newResult(W, 1);
      emit(OpKind::Zext, {R}, {Ops[2]});
      bind(S.Results[1], R);
      ++Stats.Identities;
      return;
    }
    // KnownBits: if the sum provably fits W bits, the carry is zero.
    unsigned Bound = std::max(known(Ops[0]), known(Ops[1])) + 1;
    ValueId Carry, Sum = newResult(W, std::min(W, Bound));
    std::vector<ValueId> NewOps = {Ops[0], Ops[1]};
    if (HasCin && !CinZero)
      NewOps.push_back(Ops[2]);
    if (Bound <= W) {
      bindConst(S.Results[0], Bignum(0));
      Carry = NK.newValue(1); // dead slot keeps the op shape
      // Only count a change when somebody actually read the carry;
      // otherwise repeated sweeps would never reach a fixpoint count.
      if (UseCount[S.Results[0]] > 0)
        ++Stats.StrengthReduced;
    } else {
      Carry = NK.newValue(1);
      bind(S.Results[0], Carry);
    }
    emit(OpKind::Add, {Carry, Sum}, std::move(NewOps));
    bind(S.Results[1], Sum);
    return;
  }
  case OpKind::Sub: {
    unsigned W = ResultBits(1);
    bool HasBin = Ops.size() == 3;
    if (AllConst) {
      Bignum A = *CV[0];
      Bignum B = *CV[1] + (HasBin ? *CV[2] : Bignum(0));
      if (A >= B) {
        bindConst(S.Results[0], Bignum(0));
        bindConst(S.Results[1], A - B);
      } else {
        bindConst(S.Results[0], Bignum(1));
        bindConst(S.Results[1], (Bignum::powerOfTwo(W) + A) - B);
      }
      ++Stats.FoldedConst;
      return;
    }
    bool BinZero = !HasBin || isZero(Ops[2]);
    if (BinZero && isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      bind(S.Results[1], Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (BinZero && Ops[0] == Ops[1]) {
      bindConst(S.Results[0], Bignum(0));
      bindConst(S.Results[1], Bignum(0));
      ++Stats.Identities;
      return;
    }
    ValueId Borrow = NK.newValue(1);
    ValueId Diff = newResult(W, W);
    std::vector<ValueId> NewOps = {Ops[0], Ops[1]};
    if (HasBin && !BinZero)
      NewOps.push_back(Ops[2]);
    emit(OpKind::Sub, {Borrow, Diff}, std::move(NewOps));
    bind(S.Results[0], Borrow);
    bind(S.Results[1], Diff);
    return;
  }
  case OpKind::Mul: {
    unsigned W = ResultBits(1);
    if (AllConst) {
      Bignum P = *CV[0] * *CV[1];
      bindConst(S.Results[0], P >> W);
      bindConst(S.Results[1], P.truncate(W));
      ++Stats.FoldedConst;
      return;
    }
    if (isZero(Ops[0]) || isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      bindConst(S.Results[1], Bignum(0));
      ++Stats.Identities;
      return;
    }
    if (isOne(Ops[0]) || isOne(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      bind(S.Results[1], isOne(Ops[0]) ? Ops[1] : Ops[0]);
      ++Stats.Identities;
      return;
    }
    unsigned KBound = known(Ops[0]) + known(Ops[1]);
    if (KBound <= W) {
      // The product fits the low word: drop the high half (rule 28 prune).
      bindConst(S.Results[0], Bignum(0));
      ValueId Lo = newResult(W, KBound);
      emit(OpKind::MulLow, {Lo}, {Ops[0], Ops[1]});
      bind(S.Results[1], Lo);
      ++Stats.StrengthReduced;
      return;
    }
    ValueId Hi = newResult(W, std::min(W, KBound - W));
    ValueId Lo = newResult(W, W);
    emit(OpKind::Mul, {Hi, Lo}, {Ops[0], Ops[1]});
    bind(S.Results[0], Hi);
    bind(S.Results[1], Lo);
    return;
  }
  case OpKind::MulLow: {
    unsigned W = ResultBits(0);
    if (AllConst) {
      bindConst(S.Results[0], (*CV[0] * *CV[1]).truncate(W));
      ++Stats.FoldedConst;
      return;
    }
    if (isZero(Ops[0]) || isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    if (isOne(Ops[0]) || isOne(Ops[1])) {
      bind(S.Results[0], isOne(Ops[0]) ? Ops[1] : Ops[0]);
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(W, known(Ops[0]) + known(Ops[1]));
    emit(OpKind::MulLow, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::AddMod:
  case OpKind::SubMod: {
    if (AllConst) {
      bindConst(S.Results[0], S.Kind == OpKind::AddMod
                                  ? CV[0]->addMod(*CV[1], *CV[2])
                                  : CV[0]->subMod(*CV[1], *CV[2]));
      ++Stats.FoldedConst;
      return;
    }
    // x (+|-) 0 mod q == x for reduced x.
    if (isZero(Ops[1])) {
      bind(S.Results[0], Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (S.Kind == OpKind::SubMod && Ops[0] == Ops[1]) {
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(ResultBits(0), known(Ops[2]));
    emit(S.Kind, {R}, {Ops[0], Ops[1], Ops[2]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::MulMod: {
    if (CV[0] && CV[1] && CV[2]) {
      bindConst(S.Results[0], CV[0]->mulMod(*CV[1], *CV[2]));
      ++Stats.FoldedConst;
      return;
    }
    if (isZero(Ops[0]) || isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    if (isOne(Ops[0]) || isOne(Ops[1])) {
      bind(S.Results[0], isOne(Ops[0]) ? Ops[1] : Ops[0]);
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(ResultBits(0), known(Ops[2]));
    Stmt &NS = emit(OpKind::MulMod, {R}, {Ops[0], Ops[1], Ops[2], Ops[3]});
    NS.ModBits = S.ModBits;
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Lt: {
    if (AllConst) {
      bindConst(S.Results[0], Bignum(*CV[0] < *CV[1] ? 1 : 0));
      ++Stats.FoldedConst;
      return;
    }
    if (Ops[0] == Ops[1] || isZero(Ops[1])) {
      // x < x and x < 0 are always false.
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    ValueId R = NK.newValue(1);
    emit(OpKind::Lt, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Eq: {
    if (AllConst) {
      bindConst(S.Results[0], Bignum(*CV[0] == *CV[1] ? 1 : 0));
      ++Stats.FoldedConst;
      return;
    }
    if (Ops[0] == Ops[1]) {
      bindConst(S.Results[0], Bignum(1));
      ++Stats.Identities;
      return;
    }
    ValueId R = NK.newValue(1);
    emit(OpKind::Eq, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Not: {
    if (AllConst) {
      bindConst(S.Results[0], Bignum(CV[0]->isZero() ? 1 : 0));
      ++Stats.FoldedConst;
      return;
    }
    ValueId R = NK.newValue(1);
    emit(OpKind::Not, {R}, {Ops[0]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::And: {
    unsigned W = ResultBits(0);
    if (AllConst) {
      Bignum V;
      size_t N = std::max(CV[0]->numLimbs(), CV[1]->numLimbs());
      std::vector<std::uint64_t> Words(N ? N : 1, 0);
      for (size_t I = 0; I < N; ++I)
        Words[I] = CV[0]->limb(I) & CV[1]->limb(I);
      bindConst(S.Results[0], Bignum::fromWords(Words));
      ++Stats.FoldedConst;
      return;
    }
    if (isZero(Ops[0]) || isZero(Ops[1])) {
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    if (W == 1 && (isOne(Ops[0]) || isOne(Ops[1]))) {
      bind(S.Results[0], isOne(Ops[0]) ? Ops[1] : Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (Ops[0] == Ops[1]) {
      bind(S.Results[0], Ops[0]);
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(W, std::min(known(Ops[0]), known(Ops[1])));
    emit(OpKind::And, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Or:
  case OpKind::Xor: {
    unsigned W = ResultBits(0);
    if (AllConst) {
      size_t N = std::max(CV[0]->numLimbs(), CV[1]->numLimbs());
      std::vector<std::uint64_t> Words(N ? N : 1, 0);
      for (size_t I = 0; I < N; ++I)
        Words[I] = S.Kind == OpKind::Or ? (CV[0]->limb(I) | CV[1]->limb(I))
                                        : (CV[0]->limb(I) ^ CV[1]->limb(I));
      bindConst(S.Results[0], Bignum::fromWords(Words));
      ++Stats.FoldedConst;
      return;
    }
    if (isZero(Ops[0]) || isZero(Ops[1])) {
      bind(S.Results[0], isZero(Ops[0]) ? Ops[1] : Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (S.Kind == OpKind::Or && Ops[0] == Ops[1]) {
      bind(S.Results[0], Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (S.Kind == OpKind::Xor && Ops[0] == Ops[1]) {
      bindConst(S.Results[0], Bignum(0));
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(W, std::max(known(Ops[0]), known(Ops[1])));
    emit(S.Kind, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Shl: {
    unsigned W = ResultBits(0);
    if (AllConst) {
      bindConst(S.Results[0], (*CV[0] << S.Amount).truncate(W));
      ++Stats.FoldedConst;
      return;
    }
    if (S.Amount == 0 || isZero(Ops[0])) {
      bind(S.Results[0], Ops[0]);
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(W, std::min(W, known(Ops[0]) + S.Amount));
    Stmt &NS = emit(OpKind::Shl, {R}, {Ops[0]});
    NS.Amount = S.Amount;
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Shr: {
    unsigned W = ResultBits(0);
    if (AllConst) {
      bindConst(S.Results[0], *CV[0] >> S.Amount);
      ++Stats.FoldedConst;
      return;
    }
    if (S.Amount == 0 || isZero(Ops[0])) {
      bind(S.Results[0], Ops[0]);
      ++Stats.Identities;
      return;
    }
    if (known(Ops[0]) <= S.Amount) {
      // Shifts past the significant bits: the non-power-of-two workhorse.
      bindConst(S.Results[0], Bignum(0));
      ++Stats.StrengthReduced;
      return;
    }
    ValueId R = newResult(W, known(Ops[0]) - S.Amount);
    Stmt &NS = emit(OpKind::Shr, {R}, {Ops[0]});
    NS.Amount = S.Amount;
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Select: {
    if (CV[0]) {
      bind(S.Results[0], CV[0]->isZero() ? Ops[2] : Ops[1]);
      ++Stats.Identities;
      return;
    }
    if (Ops[1] == Ops[2]) {
      bind(S.Results[0], Ops[1]);
      ++Stats.Identities;
      return;
    }
    ValueId R = newResult(ResultBits(0),
                          std::max(known(Ops[1]), known(Ops[2])));
    emit(OpKind::Select, {R}, {Ops[0], Ops[1], Ops[2]});
    bind(S.Results[0], R);
    return;
  }
  case OpKind::Split: {
    unsigned HalfW = ResultBits(0);
    if (AllConst) {
      bindConst(S.Results[0], *CV[0] >> HalfW);
      bindConst(S.Results[1], CV[0]->truncate(HalfW));
      ++Stats.FoldedConst;
      return;
    }
    unsigned K = known(Ops[0]);
    ValueId Hi = newResult(HalfW, K > HalfW ? K - HalfW : 1);
    ValueId Lo = newResult(HalfW, std::min(K, HalfW));
    emit(OpKind::Split, {Hi, Lo}, {Ops[0]});
    bind(S.Results[0], Hi);
    bind(S.Results[1], Lo);
    return;
  }
  case OpKind::Concat: {
    unsigned HalfW = widthOf(Ops[1]);
    if (AllConst) {
      bindConst(S.Results[0], (*CV[0] << HalfW) + *CV[1]);
      ++Stats.FoldedConst;
      return;
    }
    ValueId R = newResult(ResultBits(0), isZero(Ops[0])
                                             ? known(Ops[1])
                                             : HalfW + known(Ops[0]));
    emit(OpKind::Concat, {R}, {Ops[0], Ops[1]});
    bind(S.Results[0], R);
    return;
  }
  }
  moma_unreachable("unhandled opcode in simplify");
}

Kernel Rewriter::run(SimplifyStats &Stats) {
  NK.Name = Old.Name;
  for (const Param &P : Old.inputs()) {
    const ValueInfo &V = Old.value(P.Id);
    ValueId NewId = NK.newValue(V.Bits, V.Name, V.KnownBits);
    NK.addInput(NewId, P.Name);
    bind(P.Id, NewId);
  }
  for (const Stmt &S : Old.Body)
    rewriteStmt(S, Stats);
  for (const Param &P : Old.outputs())
    NK.addOutput(Subst[P.Id], P.Name);

  // Dead code elimination: keep only statements reaching an output.
  std::vector<bool> Live(NK.numValues(), false);
  for (const Param &P : NK.outputs())
    Live[P.Id] = true;
  std::vector<bool> KeepStmt(NK.Body.size(), false);
  for (size_t I = NK.Body.size(); I-- > 0;) {
    const Stmt &S = NK.Body[I];
    bool AnyLive = false;
    for (ValueId R : S.Results)
      AnyLive |= Live[R];
    if (!AnyLive)
      continue;
    KeepStmt[I] = true;
    for (ValueId Op : S.Operands)
      Live[Op] = true;
  }
  std::vector<Stmt> NewBody;
  NewBody.reserve(NK.Body.size());
  for (size_t I = 0; I < NK.Body.size(); ++I) {
    if (KeepStmt[I])
      NewBody.push_back(std::move(NK.Body[I]));
    else
      ++Stats.DeadRemoved;
  }
  NK.Body = std::move(NewBody);
  return std::move(NK);
}

SimplifyStats moma::rewrite::simplify(Kernel &K,
                                      std::vector<ValueId> *SubstOut) {
  SimplifyStats Stats;
  Rewriter R(K);
  Kernel NewK = R.run(Stats);
  if (SubstOut)
    *SubstOut = R.substitution();
  K = std::move(NewK);
  return Stats;
}

static void accumulate(SimplifyStats &Total, const SimplifyStats &S) {
  Total.FoldedConst += S.FoldedConst;
  Total.Identities += S.Identities;
  Total.StrengthReduced += S.StrengthReduced;
  Total.CopiesPropagated += S.CopiesPropagated;
  Total.DeadRemoved += S.DeadRemoved;
}

SimplifyStats moma::rewrite::simplifyToFixpoint(Kernel &K, unsigned MaxIters) {
  SimplifyStats Total;
  for (unsigned I = 0; I < MaxIters; ++I) {
    size_t Before = K.Body.size();
    SimplifyStats S = simplify(K);
    accumulate(Total, S);
    if (S.FoldedConst + S.Identities + S.StrengthReduced == 0 &&
        K.Body.size() == Before)
      break;
  }
  return Total;
}

SimplifyStats moma::rewrite::simplifyLowered(LoweredKernel &L,
                                             unsigned MaxIters) {
  SimplifyStats Total;
  std::vector<ValueId> Subst;
  for (unsigned I = 0; I < MaxIters; ++I) {
    size_t Before = L.K.Body.size();
    SimplifyStats S = simplify(L.K, &Subst);
    accumulate(Total, S);
    auto Remap = [&](std::vector<LoweredPort> &Ports) {
      for (LoweredPort &P : Ports)
        for (ValueId &W : P.Words)
          W = Subst[W];
    };
    Remap(L.Inputs);
    Remap(L.Outputs);
    if (S.FoldedConst + S.Identities + S.StrengthReduced == 0 &&
        L.K.Body.size() == Before)
      break;
  }
  return Total;
}
