//===- rewrite/RangeAnalysis.cpp - Interval range analysis ----------------===//
//
// Exact [lo, hi] interval propagation through the straight-line kernel,
// generalizing the KnownBits significant-bit bound (and PR 5's manual
// "r < 3q" annotations) to arbitrary value ranges. Because kernels are
// SSA-ordered straight-line code, one forward walk computes the interval
// fixpoint; the pass rides the shared KernelRebuilder walk and rewrites as
// it goes:
//
//  * adds whose interval sum fits the word kill their carry — notably the
//    high word of a full w*w multiply is at most 2^w - 2, so folding one
//    carry into it can never overflow, a fact the power-of-two KnownBits
//    bound (which would need 2^w - 1) cannot see;
//  * subs whose minuend interval dominates the subtrahend kill the borrow;
//  * full multiplies whose interval product fits the low word become
//    MulLow even when the bit-width product bound overflows;
//  * compares over disjoint intervals fold to constants (conditional
//    subtract chains then collapse via the select identity);
//  * right shifts past the interval's high bound fold to zero.
//
// Result KnownBits are tightened to the interval's bit width (never
// loosened past what the previous sweep proved); tightenings count as
// changes only when strict, so repeated sweeps reach a fixpoint.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Passes.h"

#include <algorithm>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using mw::Bignum;

namespace {

/// Largest value of a W-bit word.
Bignum maxFor(unsigned W) { return Bignum::powerOfTwo(W) - Bignum(1); }

/// KnownBits bound implied by an inclusive high bound.
unsigned bitsOf(const Bignum &Hi) { return std::max(1u, Hi.bitWidth()); }

} // namespace

void RangeAnalysisPass::begin(KernelRebuilder &RB) {
  (void)RB;
  Ranges.clear();
  HasRange.clear();
  // Pick up the bounds the lowering proved but could not keep in the
  // ValueInfos (LoweredKernel::WordBounds). Ids may collide after pass
  // substitutions merged values; keep the sharper bound.
  Bounds.clear();
  if (LoweredKernel *L = CurAC ? CurAC->lowered() : nullptr)
    for (const auto &BP : L->WordBounds) {
      auto [It, Inserted] = Bounds.emplace(BP.first, BP.second);
      if (!Inserted)
        It->second = std::min(It->second, BP.second);
    }
}

void RangeAnalysisPass::applyBound(KernelRebuilder &RB, ValueId OldR) {
  auto It = Bounds.find(OldR);
  if (It == Bounds.end())
    return;
  unsigned B = It->second;
  ValueId NewR = RB.mapped(OldR);
  if (RB.constOf(NewR))
    return; // already folded; the fact is spent
  if (B == 0) {
    // The word is provably zero. Fold it only when somebody reads it (the
    // substitution then routes the uses to the constant and the producing
    // statement dies); an unread result just keeps the [0, 0] interval.
    if (RB.useCount(OldR) > 0) {
      RB.bindConst(OldR, Bignum(0));
      ++RB.Changes;
      return;
    }
    setRange(NewR, {Bignum(0), Bignum(0)});
    return;
  }
  ir::ValueInfo &VI = RB.newKernel().value(NewR);
  if (B < VI.KnownBits) {
    // Count only strict tightenings against the OLD bound: once the
    // emitDefault clamp has made the sharper KnownBits stick, re-applying
    // the same bound is a no-op and sweeps converge.
    if (B < RB.oldKernel().value(OldR).KnownBits)
      ++RB.Changes;
    VI.KnownBits = B;
  }
  Interval I = rangeOf(RB, NewR);
  I.Hi = std::min(I.Hi, maxFor(B));
  if (I.Lo > I.Hi)
    I.Lo = I.Hi; // stale box floor; the bound is the sharper fact
  setRange(NewR, std::move(I));
}

void RangeAnalysisPass::applyBounds(KernelRebuilder &RB,
                                    const std::vector<ValueId> &OldResults) {
  if (Bounds.empty())
    return;
  for (ValueId R : OldResults)
    applyBound(RB, R);
}

RangeAnalysisPass::Interval
RangeAnalysisPass::rangeOf(KernelRebuilder &RB, ValueId NewId) const {
  if (const Bignum *C = RB.constOf(NewId))
    return {*C, *C};
  if (static_cast<size_t>(NewId) < HasRange.size() && HasRange[NewId])
    return Ranges[NewId];
  return {Bignum(0), maxFor(RB.known(NewId))};
}

void RangeAnalysisPass::setRange(ValueId NewId, Interval I) {
  if (static_cast<size_t>(NewId) >= HasRange.size()) {
    Ranges.resize(NewId + 1);
    HasRange.resize(NewId + 1, false);
  }
  Ranges[NewId] = std::move(I);
  HasRange[NewId] = true;
}

bool RangeAnalysisPass::tryRewrite(KernelRebuilder &RB, const Stmt &S,
                                   const std::vector<ValueId> &Ops,
                                   const std::vector<const Bignum *> &CV,
                                   bool AllConst) {
  (void)CV;
  (void)AllConst;
  const Kernel &Old = RB.oldKernel();
  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };
  auto OldKnown = [&](unsigned I) { return Old.value(S.Results[I]).KnownBits; };

  switch (S.Kind) {
  case OpKind::Add: {
    unsigned W = ResultBits(1);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    Interval I2 = Ops.size() == 3 ? rangeOf(RB, Ops[2])
                                  : Interval{Bignum(0), Bignum(0)};
    Bignum HiS = I0.Hi + I1.Hi + I2.Hi;
    if (HiS >= Bignum::powerOfTwo(W))
      return false; // the carry can fire; nothing beyond the default here
    Bignum LoS = I0.Lo + I1.Lo + I2.Lo;
    unsigned Known = std::min({W, bitsOf(HiS), std::max(1u, OldKnown(1))});
    ValueId Carry = RB.newKernel().newValue(1); // dead slot keeps the shape
    ValueId Sum = RB.newResult(W, Known);
    RB.emit(OpKind::Add, {Carry, Sum}, Ops);
    RB.bind(S.Results[1], Sum);
    if (Known < OldKnown(1))
      ++RB.Changes; // strict tightening is progress; equality is a no-op
    if (RB.useCount(S.Results[0]) > 0) {
      RB.bindConst(S.Results[0], Bignum(0));
      ++RB.Changes;
    } else {
      RB.bind(S.Results[0], Carry);
    }
    setRange(Sum, {std::move(LoS), std::min(HiS, maxFor(Known))});
    setRange(Carry, {Bignum(0), Bignum(0)});
    applyBounds(RB, S.Results);
    return true;
  }
  case OpKind::Sub: {
    unsigned W = ResultBits(1);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    Interval I2 = Ops.size() == 3 ? rangeOf(RB, Ops[2])
                                  : Interval{Bignum(0), Bignum(0)};
    Bignum HiB = I1.Hi + I2.Hi;
    if (I0.Lo < HiB)
      return false; // a < b + bin is possible; the borrow stays
    Bignum LoD = I0.Lo - HiB;
    Bignum HiD = I0.Hi - I1.Lo - I2.Lo;
    unsigned Known = std::min({W, bitsOf(HiD), std::max(1u, OldKnown(1))});
    ValueId Borrow = RB.newKernel().newValue(1);
    ValueId Diff = RB.newResult(W, Known);
    RB.emit(OpKind::Sub, {Borrow, Diff}, Ops);
    RB.bind(S.Results[1], Diff);
    if (Known < OldKnown(1))
      ++RB.Changes;
    if (RB.useCount(S.Results[0]) > 0) {
      RB.bindConst(S.Results[0], Bignum(0));
      ++RB.Changes;
    } else {
      RB.bind(S.Results[0], Borrow);
    }
    setRange(Diff, {std::move(LoD), std::min(HiD, maxFor(Known))});
    setRange(Borrow, {Bignum(0), Bignum(0)});
    applyBounds(RB, S.Results);
    return true;
  }
  case OpKind::Mul: {
    unsigned W = ResultBits(1);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    Bignum HiP = I0.Hi * I1.Hi;
    if (HiP >= Bignum::powerOfTwo(W))
      return false;
    // The interval product fits the low word even though the bit-width
    // bound may not: drop the high half.
    unsigned Known = std::min({W, bitsOf(HiP), std::max(1u, OldKnown(1))});
    ValueId Lo = RB.newResult(W, Known);
    RB.emit(OpKind::MulLow, {Lo}, Ops);
    RB.bind(S.Results[1], Lo);
    if (RB.useCount(S.Results[0]) > 0)
      RB.bindConst(S.Results[0], Bignum(0));
    else
      RB.bind(S.Results[0], Lo); // never read; any valid id will do
    ++RB.Changes;
    setRange(Lo, {I0.Lo * I1.Lo, std::min(HiP, maxFor(Known))});
    applyBounds(RB, S.Results);
    return true;
  }
  case OpKind::Lt: {
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    if (I0.Hi < I1.Lo) {
      RB.bindConst(S.Results[0], Bignum(1)); // always a < b
      ++RB.Changes;
      return true;
    }
    if (I0.Lo >= I1.Hi) {
      RB.bindConst(S.Results[0], Bignum(0)); // always a >= b
      ++RB.Changes;
      return true;
    }
    return false;
  }
  case OpKind::Eq: {
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    if (I0.Hi < I1.Lo || I1.Hi < I0.Lo) {
      RB.bindConst(S.Results[0], Bignum(0)); // disjoint intervals
      ++RB.Changes;
      return true;
    }
    return false;
  }
  case OpKind::Shr: {
    Interval I0 = rangeOf(RB, Ops[0]);
    if (!(I0.Hi >> S.Amount).isZero())
      return false;
    RB.bindConst(S.Results[0], Bignum(0));
    ++RB.Changes;
    return true;
  }
  default:
    return false;
  }
}

void RangeAnalysisPass::observeDefault(KernelRebuilder &RB, const Stmt &OldS,
                                       const Stmt &NewS) {
  transfer(RB, NewS);
  applyBounds(RB, OldS.Results);
}

void RangeAnalysisPass::transfer(KernelRebuilder &RB, const Stmt &NewS) {
  const std::vector<ValueId> &Ops = NewS.Operands;
  switch (NewS.Kind) {
  case OpKind::Copy:
  case OpKind::Zext:
    setRange(NewS.Results[0], rangeOf(RB, Ops[0]));
    return;
  case OpKind::Mul: {
    // The high word of the full product: floor(p / 2^W) for p in the
    // interval product. In particular for full-box operands the bound is
    // 2^W - 2, which is what lets the accumulation adds above kill their
    // carries.
    unsigned W = RB.widthOf(NewS.Results[1]);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    setRange(NewS.Results[0],
             {(I0.Lo * I1.Lo) >> W, (I0.Hi * I1.Hi) >> W});
    return;
  }
  case OpKind::MulLow: {
    unsigned W = RB.widthOf(NewS.Results[0]);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    Bignum HiP = I0.Hi * I1.Hi;
    if (HiP < Bignum::powerOfTwo(W))
      setRange(NewS.Results[0], {I0.Lo * I1.Lo, std::move(HiP)});
    return;
  }
  case OpKind::And: {
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    setRange(NewS.Results[0], {Bignum(0), std::min(I0.Hi, I1.Hi)});
    return;
  }
  case OpKind::Or: {
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    setRange(NewS.Results[0],
             {std::max(I0.Lo, I1.Lo),
              maxFor(std::max(bitsOf(I0.Hi), bitsOf(I1.Hi)))});
    return;
  }
  case OpKind::Shl: {
    unsigned W = RB.widthOf(NewS.Results[0]);
    Interval I0 = rangeOf(RB, Ops[0]);
    Bignum Hi = I0.Hi << NewS.Amount;
    if (Hi < Bignum::powerOfTwo(W))
      setRange(NewS.Results[0], {I0.Lo << NewS.Amount, std::move(Hi)});
    return;
  }
  case OpKind::Shr: {
    Interval I0 = rangeOf(RB, Ops[0]);
    setRange(NewS.Results[0],
             {I0.Lo >> NewS.Amount, I0.Hi >> NewS.Amount});
    return;
  }
  case OpKind::Select: {
    Interval I1 = rangeOf(RB, Ops[1]), I2 = rangeOf(RB, Ops[2]);
    setRange(NewS.Results[0],
             {std::min(I1.Lo, I2.Lo), std::max(I1.Hi, I2.Hi)});
    return;
  }
  case OpKind::Split: {
    unsigned HalfW = RB.widthOf(NewS.Results[0]);
    Interval I0 = rangeOf(RB, Ops[0]);
    setRange(NewS.Results[0], {I0.Lo >> HalfW, I0.Hi >> HalfW});
    setRange(NewS.Results[1], {Bignum(0), std::min(I0.Hi, maxFor(HalfW))});
    return;
  }
  case OpKind::Concat: {
    unsigned HalfW = RB.widthOf(Ops[1]);
    Interval I0 = rangeOf(RB, Ops[0]), I1 = rangeOf(RB, Ops[1]);
    setRange(NewS.Results[0],
             {(I0.Lo << HalfW) + I1.Lo, (I0.Hi << HalfW) + I1.Hi});
    return;
  }
  case OpKind::AddMod:
  case OpKind::SubMod:
  case OpKind::MulMod: {
    // Results are reduced: in [0, q-1], and q's interval bounds q.
    Interval Iq = rangeOf(RB, Ops[2]);
    setRange(NewS.Results[0],
             {Bignum(0),
              Iq.Hi.isZero() ? Bignum(0) : Iq.Hi - Bignum(1)});
    return;
  }
  default:
    // Remaining results keep their KnownBits box (Add/Sub that can
    // overflow, 1-bit flags, ...).
    return;
  }
}
