//===- rewrite/PlanOptions.cpp - Unified generation-plan knobs ------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "rewrite/PlanOptions.h"

#include "rewrite/Schedule.h"
#include "rewrite/Simplify.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::rewrite;

std::string PlanOptions::str() const {
  return formatv("w%u/%s/%s/%s/%s", TargetWordBits, mw::reductionName(Red),
                 MulAlg == mw::MulAlgorithm::Karatsuba ? "karatsuba"
                                                       : "schoolbook",
                 Prune ? "prune" : "noprune",
                 Schedule ? "schedule" : "noschedule");
}

LoweredKernel moma::rewrite::lowerWithPlan(const ir::Kernel &K,
                                           const PlanOptions &Opts) {
  LoweredKernel L = lowerToWords(K, Opts.lowerOptions());
  if (Opts.Prune)
    simplifyLowered(L);
  if (Opts.Schedule)
    scheduleForPressure(L.K, Opts.TargetWordBits);
  return L;
}
