//===- rewrite/PlanOptions.cpp - Unified generation-plan knobs ------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "rewrite/PlanOptions.h"

#include "rewrite/PassManager.h"
#include "rewrite/Schedule.h"
#include "rewrite/Simplify.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::rewrite;

const char *moma::rewrite::execBackendName(ExecBackend B) {
  switch (B) {
  case ExecBackend::SimGpu:
    return "simgpu";
  case ExecBackend::Vector:
    return "vector";
  case ExecBackend::Interp:
    return "interp";
  case ExecBackend::Serial:
    break;
  }
  return "serial";
}

const char *moma::rewrite::nttRingName(NttRing R) {
  return R == NttRing::Negacyclic ? "negacyclic" : "cyclic";
}

std::string PlanOptions::str() const {
  std::string S =
      formatv("w%u/%s/%s/%s/%s", TargetWordBits, mw::reductionName(Red),
              MulAlg == mw::MulAlgorithm::Karatsuba ? "karatsuba"
                                                    : "schoolbook",
              Prune ? "prune" : "noprune",
              Schedule ? "schedule" : "noschedule");
  // Serial plans keep the historical five-token form so every cache key
  // minted before the backend knob existed still names the same plan.
  // Vector plans carry the lane count instead of a block dimension.
  if (Backend == ExecBackend::Vector)
    S += formatv("/vec/v%u", VectorWidth);
  else if (Backend == ExecBackend::Interp)
    S += "/interp"; // no launch geometry: the interpreter has none
  else if (Backend != ExecBackend::Serial)
    S += formatv("/%s/b%u", execBackendName(Backend), BlockDim);
  // Depth 1 is the historical radix-2 shape; only deeper fusion extends
  // the key, so pre-fusion cache keys stay readable.
  if (FuseDepth > 1)
    S += formatv("/f%u", FuseDepth);
  // Cyclic is the historical ring; only negacyclic plans extend the key.
  if (Ring == NttRing::Negacyclic)
    S += "/neg";
  // The default pipeline is the historical simplifier; only other pass
  // specs extend the key.
  if (!normalizedPasses().empty())
    S += "/p=" + normalizedPasses();
  return S;
}

LoweredKernel moma::rewrite::lowerWithPlan(const ir::Kernel &K,
                                           const PlanOptions &Opts) {
  LoweredKernel L = lowerToWords(K, Opts.lowerOptions());
  if (Opts.Prune) {
    if (Opts.normalizedPasses().empty()) {
      simplifyLowered(L);
    } else {
      PassPipeline P;
      std::string Err;
      if (!parsePipeline(Opts.Passes, P, &Err))
        fatalError(formatv("lowerWithPlan: %s", Err.c_str()));
      P.runLowered(L);
    }
  }
  if (Opts.Schedule)
    scheduleForPressure(L.K, Opts.TargetWordBits);
  return L;
}
