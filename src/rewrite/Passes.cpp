//===- rewrite/Passes.cpp - The rewrite pass catalog ----------------------===//
//
// The first five passes are the decomposed Simplify monolith: each owns one
// rule family from the old Rewriter::rewriteStmt, and the default pipeline
// (constfold, algebraic, knownbits, copyprop, dce) run to a fixed point
// reproduces its behaviour. CSE and dead-port elimination are new; interval
// range analysis lives in rewrite/RangeAnalysis.cpp.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Passes.h"

#include "support/Error.h"

#include <algorithm>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using mw::Bignum;

//===----------------------------------------------------------------------===//
// ConstFoldPass
//===----------------------------------------------------------------------===//

bool ConstFoldPass::tryRewrite(KernelRebuilder &RB, const Stmt &S,
                               const std::vector<ValueId> &Ops,
                               const std::vector<const Bignum *> &CV,
                               bool AllConst) {
  (void)Ops;
  const Kernel &Old = RB.oldKernel();
  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };

  switch (S.Kind) {
  case OpKind::Zext:
    if (!CV[0])
      return false;
    RB.bindConst(S.Results[0], *CV[0]);
    break;
  case OpKind::Add: {
    if (!AllConst)
      return false;
    unsigned W = ResultBits(1);
    Bignum Sum = *CV[0] + *CV[1] + (Ops.size() == 3 ? *CV[2] : Bignum(0));
    RB.bindConst(S.Results[0], Sum >> W);
    RB.bindConst(S.Results[1], Sum.truncate(W));
    break;
  }
  case OpKind::Sub: {
    if (!AllConst)
      return false;
    unsigned W = ResultBits(1);
    Bignum A = *CV[0];
    Bignum B = *CV[1] + (Ops.size() == 3 ? *CV[2] : Bignum(0));
    if (A >= B) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bindConst(S.Results[1], A - B);
    } else {
      RB.bindConst(S.Results[0], Bignum(1));
      RB.bindConst(S.Results[1], (Bignum::powerOfTwo(W) + A) - B);
    }
    break;
  }
  case OpKind::Mul: {
    if (!AllConst)
      return false;
    unsigned W = ResultBits(1);
    Bignum P = *CV[0] * *CV[1];
    RB.bindConst(S.Results[0], P >> W);
    RB.bindConst(S.Results[1], P.truncate(W));
    break;
  }
  case OpKind::MulLow:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], (*CV[0] * *CV[1]).truncate(ResultBits(0)));
    break;
  case OpKind::AddMod:
  case OpKind::SubMod:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], S.Kind == OpKind::AddMod
                                   ? CV[0]->addMod(*CV[1], *CV[2])
                                   : CV[0]->subMod(*CV[1], *CV[2]));
    break;
  case OpKind::MulMod:
    // mu (the fourth operand) is not needed to fold the exact product.
    if (!(CV[0] && CV[1] && CV[2]))
      return false;
    RB.bindConst(S.Results[0], CV[0]->mulMod(*CV[1], *CV[2]));
    break;
  case OpKind::Lt:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], Bignum(*CV[0] < *CV[1] ? 1 : 0));
    break;
  case OpKind::Eq:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], Bignum(*CV[0] == *CV[1] ? 1 : 0));
    break;
  case OpKind::Not:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], Bignum(CV[0]->isZero() ? 1 : 0));
    break;
  case OpKind::And:
  case OpKind::Or:
  case OpKind::Xor: {
    if (!AllConst)
      return false;
    size_t N = std::max(CV[0]->numLimbs(), CV[1]->numLimbs());
    std::vector<std::uint64_t> Words(N ? N : 1, 0);
    for (size_t I = 0; I < N; ++I)
      Words[I] = S.Kind == OpKind::And ? (CV[0]->limb(I) & CV[1]->limb(I))
                 : S.Kind == OpKind::Or ? (CV[0]->limb(I) | CV[1]->limb(I))
                                        : (CV[0]->limb(I) ^ CV[1]->limb(I));
    RB.bindConst(S.Results[0], Bignum::fromWords(Words));
    break;
  }
  case OpKind::Shl:
    if (!CV[0])
      return false;
    RB.bindConst(S.Results[0], (*CV[0] << S.Amount).truncate(ResultBits(0)));
    break;
  case OpKind::Shr:
    if (!CV[0])
      return false;
    RB.bindConst(S.Results[0], *CV[0] >> S.Amount);
    break;
  case OpKind::Split: {
    if (!CV[0])
      return false;
    // Copy before binding: bindConst may grow the rebuilder's constant
    // table, invalidating the CV pointers.
    Bignum V = *CV[0];
    RB.bindConst(S.Results[0], V >> ResultBits(0));
    RB.bindConst(S.Results[1], V.truncate(ResultBits(0)));
    break;
  }
  case OpKind::Concat:
    if (!AllConst)
      return false;
    RB.bindConst(S.Results[0], (*CV[0] << RB.widthOf(Ops[1])) + *CV[1]);
    break;
  default:
    // Select-on-constant counts as an algebraic identity (it picks an
    // operand rather than computing a value); Copy is copyprop's.
    return false;
  }
  ++RB.Changes;
  return true;
}

//===----------------------------------------------------------------------===//
// AlgebraicIdentitiesPass
//===----------------------------------------------------------------------===//

bool AlgebraicIdentitiesPass::tryRewrite(KernelRebuilder &RB, const Stmt &S,
                                         const std::vector<ValueId> &Ops,
                                         const std::vector<const Bignum *> &CV,
                                         bool AllConst) {
  (void)AllConst;
  const Kernel &Old = RB.oldKernel();
  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };

  switch (S.Kind) {
  case OpKind::Add: {
    unsigned W = ResultBits(1);
    bool HasCin = Ops.size() == 3;
    bool CinZero = !HasCin || RB.isZero(Ops[2]);
    // x + 0 (+0) => x, carry 0.
    if (CinZero && RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bind(S.Results[1], Ops[0]);
      break;
    }
    if (CinZero && RB.isZero(Ops[0])) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bind(S.Results[1], Ops[1]);
      break;
    }
    // 0 + 0 + cin => zext(cin), carry 0.
    if (RB.isZero(Ops[0]) && RB.isZero(Ops[1]) && HasCin) {
      RB.bindConst(S.Results[0], Bignum(0));
      ValueId R = RB.newResult(W, 1);
      RB.emit(OpKind::Zext, {R}, {Ops[2]});
      RB.bind(S.Results[1], R);
      break;
    }
    // A provably-zero carry-in drops off the operand list.
    if (HasCin && CinZero) {
      ValueId Carry = RB.newKernel().newValue(1);
      ValueId Sum = RB.newResult(
          W, std::min(W, std::max(RB.known(Ops[0]), RB.known(Ops[1])) + 1));
      RB.emit(OpKind::Add, {Carry, Sum}, {Ops[0], Ops[1]});
      RB.bind(S.Results[0], Carry);
      RB.bind(S.Results[1], Sum);
      break;
    }
    return false;
  }
  case OpKind::Sub: {
    unsigned W = ResultBits(1);
    bool HasBin = Ops.size() == 3;
    bool BinZero = !HasBin || RB.isZero(Ops[2]);
    if (BinZero && RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bind(S.Results[1], Ops[0]);
      break;
    }
    if (BinZero && Ops[0] == Ops[1]) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bindConst(S.Results[1], Bignum(0));
      break;
    }
    if (HasBin && BinZero) {
      ValueId Borrow = RB.newKernel().newValue(1);
      ValueId Diff = RB.newResult(W, W);
      RB.emit(OpKind::Sub, {Borrow, Diff}, {Ops[0], Ops[1]});
      RB.bind(S.Results[0], Borrow);
      RB.bind(S.Results[1], Diff);
      break;
    }
    return false;
  }
  case OpKind::Mul:
    if (RB.isZero(Ops[0]) || RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bindConst(S.Results[1], Bignum(0));
      break;
    }
    if (RB.isOne(Ops[0]) || RB.isOne(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      RB.bind(S.Results[1], RB.isOne(Ops[0]) ? Ops[1] : Ops[0]);
      break;
    }
    return false;
  case OpKind::MulLow:
    if (RB.isZero(Ops[0]) || RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    if (RB.isOne(Ops[0]) || RB.isOne(Ops[1])) {
      RB.bind(S.Results[0], RB.isOne(Ops[0]) ? Ops[1] : Ops[0]);
      break;
    }
    return false;
  case OpKind::AddMod:
  case OpKind::SubMod:
    // x (+|-) 0 mod q == x for reduced x.
    if (RB.isZero(Ops[1])) {
      RB.bind(S.Results[0], Ops[0]);
      break;
    }
    if (S.Kind == OpKind::SubMod && Ops[0] == Ops[1]) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    return false;
  case OpKind::MulMod:
    if (RB.isZero(Ops[0]) || RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    if (RB.isOne(Ops[0]) || RB.isOne(Ops[1])) {
      RB.bind(S.Results[0], RB.isOne(Ops[0]) ? Ops[1] : Ops[0]);
      break;
    }
    return false;
  case OpKind::Lt:
    // x < x and x < 0 are always false.
    if (Ops[0] == Ops[1] || RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    return false;
  case OpKind::Eq:
    if (Ops[0] == Ops[1]) {
      RB.bindConst(S.Results[0], Bignum(1));
      break;
    }
    return false;
  case OpKind::And:
    if (RB.isZero(Ops[0]) || RB.isZero(Ops[1])) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    if (ResultBits(0) == 1 && (RB.isOne(Ops[0]) || RB.isOne(Ops[1]))) {
      RB.bind(S.Results[0], RB.isOne(Ops[0]) ? Ops[1] : Ops[0]);
      break;
    }
    if (Ops[0] == Ops[1]) {
      RB.bind(S.Results[0], Ops[0]);
      break;
    }
    return false;
  case OpKind::Or:
  case OpKind::Xor:
    if (RB.isZero(Ops[0]) || RB.isZero(Ops[1])) {
      RB.bind(S.Results[0], RB.isZero(Ops[0]) ? Ops[1] : Ops[0]);
      break;
    }
    if (S.Kind == OpKind::Or && Ops[0] == Ops[1]) {
      RB.bind(S.Results[0], Ops[0]);
      break;
    }
    if (S.Kind == OpKind::Xor && Ops[0] == Ops[1]) {
      RB.bindConst(S.Results[0], Bignum(0));
      break;
    }
    return false;
  case OpKind::Shl:
  case OpKind::Shr:
    if (S.Amount == 0 || RB.isZero(Ops[0])) {
      RB.bind(S.Results[0], Ops[0]);
      break;
    }
    return false;
  case OpKind::Select:
    if (CV[0]) {
      RB.bind(S.Results[0], CV[0]->isZero() ? Ops[2] : Ops[1]);
      break;
    }
    if (Ops[1] == Ops[2]) {
      RB.bind(S.Results[0], Ops[1]);
      break;
    }
    return false;
  default:
    return false;
  }
  ++RB.Changes;
  return true;
}

//===----------------------------------------------------------------------===//
// KnownBitsStrengthReducePass
//===----------------------------------------------------------------------===//

bool KnownBitsStrengthReducePass::tryRewrite(
    KernelRebuilder &RB, const Stmt &S, const std::vector<ValueId> &Ops,
    const std::vector<const Bignum *> &CV, bool AllConst) {
  (void)CV;
  (void)AllConst;
  const Kernel &Old = RB.oldKernel();
  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };

  switch (S.Kind) {
  case OpKind::Add: {
    // If the sum provably fits W bits, the carry is zero (a carry-in adds
    // at most one, which max(k0, k1) + 1 already covers).
    unsigned W = ResultBits(1);
    unsigned Bound = std::max(RB.known(Ops[0]), RB.known(Ops[1])) + 1;
    if (Bound > W)
      return false;
    ValueId Carry = RB.newKernel().newValue(1); // dead slot keeps the shape
    ValueId Sum = RB.newResult(W, Bound);
    RB.emit(OpKind::Add, {Carry, Sum}, Ops);
    RB.bind(S.Results[1], Sum);
    // Only bind (and count) the constant carry when somebody read it;
    // re-reducing an already-reduced add must leave no trace, or repeated
    // sweeps would never reach a fixpoint.
    if (RB.useCount(S.Results[0]) > 0) {
      RB.bindConst(S.Results[0], Bignum(0));
      ++RB.Changes;
    } else {
      RB.bind(S.Results[0], Carry);
    }
    return true;
  }
  case OpKind::Mul: {
    unsigned W = ResultBits(1);
    unsigned KBound = RB.known(Ops[0]) + RB.known(Ops[1]);
    if (KBound > W)
      return false;
    // The product fits the low word: drop the high half (rule 28 prune).
    ValueId Lo = RB.newResult(W, KBound);
    RB.emit(OpKind::MulLow, {Lo}, Ops);
    RB.bind(S.Results[1], Lo);
    if (RB.useCount(S.Results[0]) > 0)
      RB.bindConst(S.Results[0], Bignum(0));
    else
      RB.bind(S.Results[0], Lo); // never read; any valid id will do
    ++RB.Changes;
    return true;
  }
  case OpKind::Shr:
    // Shifts past the significant bits: the non-power-of-two workhorse.
    if (RB.known(Ops[0]) > S.Amount)
      return false;
    RB.bindConst(S.Results[0], Bignum(0));
    ++RB.Changes;
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// CopyPropPass
//===----------------------------------------------------------------------===//

bool CopyPropPass::tryRewrite(KernelRebuilder &RB, const Stmt &S,
                              const std::vector<ValueId> &Ops,
                              const std::vector<const Bignum *> &CV,
                              bool AllConst) {
  (void)CV;
  (void)AllConst;
  if (S.Kind == OpKind::Copy) {
    RB.bind(S.Results[0], Ops[0]);
    ++RB.Changes;
    return true;
  }
  if (S.Kind == OpKind::Zext &&
      RB.widthOf(Ops[0]) == RB.oldKernel().value(S.Results[0]).Bits) {
    RB.bind(S.Results[0], Ops[0]);
    ++RB.Changes;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// DcePass
//===----------------------------------------------------------------------===//

PassResult DcePass::run(Kernel &K, AnalysisCache &AC) {
  (void)AC;
  std::vector<bool> Live(K.numValues(), false);
  for (const Param &P : K.outputs())
    Live[P.Id] = true;
  std::vector<bool> Keep(K.Body.size(), false);
  for (size_t I = K.Body.size(); I-- > 0;) {
    const Stmt &S = K.Body[I];
    bool AnyLive = false;
    for (ValueId R : S.Results)
      AnyLive |= Live[R];
    if (!AnyLive)
      continue;
    Keep[I] = true;
    for (ValueId Op : S.Operands)
      Live[Op] = true;
  }
  // Decide before moving anything: a no-op DCE must leave K untouched.
  if (std::find(Keep.begin(), Keep.end(), false) == Keep.end())
    return {};
  PassResult R;
  std::vector<Stmt> NewBody;
  NewBody.reserve(K.Body.size());
  for (size_t I = 0; I < K.Body.size(); ++I) {
    if (Keep[I])
      NewBody.push_back(std::move(K.Body[I]));
    else
      ++R.Removed;
  }
  K.Body = std::move(NewBody);
  return R;
}

//===----------------------------------------------------------------------===//
// CsePass
//===----------------------------------------------------------------------===//

/// Whether swapping the first two operands of \p Kind preserves semantics.
static bool commutativeInFirstTwo(OpKind Kind) {
  switch (Kind) {
  case OpKind::Add: // a + b (+ cin): the addends commute
  case OpKind::Mul:
  case OpKind::MulLow:
  case OpKind::And:
  case OpKind::Or:
  case OpKind::Xor:
  case OpKind::Eq:
  case OpKind::AddMod: // a + b mod q
  case OpKind::MulMod: // a * b mod q
    return true;
  default:
    return false;
  }
}

void CsePass::begin(KernelRebuilder &RB) {
  (void)RB;
  Table.clear();
}

CsePass::Key CsePass::makeKey(const Kernel &ValueCtx, const Stmt &S,
                              const std::vector<ValueId> &Ops) const {
  Key K;
  K.reserve(4 + S.Results.size() + Ops.size());
  K.push_back(static_cast<std::uint64_t>(S.Kind));
  K.push_back(S.Amount);
  K.push_back(S.ModBits);
  K.push_back(S.Results.size());
  for (ValueId R : S.Results)
    K.push_back(ValueCtx.value(R).Bits);
  std::uint64_t A = Ops.empty() ? 0 : Ops[0];
  std::uint64_t B = Ops.size() > 1 ? Ops[1] : 0;
  if (Ops.size() > 1 && commutativeInFirstTwo(S.Kind) && B < A)
    std::swap(A, B); // canonical order for the key only
  if (!Ops.empty())
    K.push_back(A);
  if (Ops.size() > 1)
    K.push_back(B);
  for (size_t I = 2; I < Ops.size(); ++I)
    K.push_back(Ops[I]);
  return K;
}

bool CsePass::tryRewrite(KernelRebuilder &RB, const Stmt &S,
                         const std::vector<ValueId> &Ops,
                         const std::vector<const Bignum *> &CV,
                         bool AllConst) {
  (void)CV;
  (void)AllConst;
  auto It = Table.find(makeKey(RB.oldKernel(), S, Ops));
  if (It == Table.end())
    return false;
  // Same opcode, same (canonicalized) operands, same result shape: every
  // statement in this IR is pure, so rebind to the first occurrence.
  for (size_t I = 0; I < S.Results.size(); ++I)
    RB.bind(S.Results[I], It->second[I]);
  ++RB.Changes;
  return true;
}

void CsePass::observeDefault(KernelRebuilder &RB, const Stmt &OldS,
                             const Stmt &NewS) {
  (void)OldS;
  Table.emplace(makeKey(RB.newKernel(), NewS, NewS.Operands), NewS.Results);
}

//===----------------------------------------------------------------------===//
// DeadPortEliminationPass
//===----------------------------------------------------------------------===//

PassResult DeadPortEliminationPass::run(Kernel &K, AnalysisCache &AC) {
  LoweredKernel *L = AC.lowered();
  if (!L)
    return {};
  const std::vector<unsigned> &Uses = AC.useCounts(K);
  PassResult R;
  for (LoweredPort &P : L->Inputs) {
    if (P.IsDead.size() != P.Words.size())
      P.IsDead.assign(P.Words.size(), false);
    for (size_t I = 0; I < P.Words.size(); ++I) {
      if (P.IsDead[I] || P.IsConstZero[I])
        continue;
      ValueId W = P.Words[I];
      if (static_cast<size_t>(W) < Uses.size() && Uses[W] == 0) {
        P.IsDead[I] = true;
        ++R.Removed; // only newly-marked words count, so reruns converge
      }
    }
  }
  return R;
}
