//===- rewrite/Stats.h - Operation counting --------------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation-count statistics over kernels: the measurement device for the
/// paper's §2.2 operation-count claims (schoolbook: 4 muls + 6 adds;
/// Karatsuba: 3 muls + 12 adds/subs) and for the non-power-of-two pruning
/// ablation (how many ops the zero words eliminate).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_STATS_H
#define MOMA_REWRITE_STATS_H

#include "ir/Ir.h"

#include <map>
#include <string>

namespace moma {
namespace rewrite {

/// Per-opcode and aggregate statement counts.
struct OpStats {
  std::map<ir::OpKind, unsigned> ByKind;
  unsigned Total = 0;

  unsigned count(ir::OpKind K) const {
    auto It = ByKind.find(K);
    return It == ByKind.end() ? 0 : It->second;
  }

  /// Word multiplications (Mul + MulLow), the dominant cost on GPUs.
  unsigned multiplies() const;

  /// Word additions/subtractions.
  unsigned addSubs() const;

  /// One line per opcode, sorted by count.
  std::string report() const;
};

/// Counts the statements of \p K.
OpStats countOps(const ir::Kernel &K);

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_STATS_H
