//===- rewrite/Schedule.cpp - Live ranges and list scheduling --------------===//

#include "rewrite/Schedule.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;

/// Words a value occupies in a register file of \p WordBits-bit registers.
static unsigned wordsOf(const Kernel &K, ValueId Id, unsigned WordBits) {
  unsigned Bits = K.value(Id).Bits;
  return std::max(1u, (Bits + WordBits - 1) / WordBits);
}

PressureStats moma::rewrite::measurePressure(const Kernel &K,
                                             unsigned WordBits) {
  // Last use of each value (outputs are used "after the end").
  const size_t NumStmts = K.Body.size();
  std::vector<size_t> LastUse(K.numValues(), 0);
  std::vector<bool> Used(K.numValues(), false);
  for (size_t I = 0; I < NumStmts; ++I) {
    for (ValueId Op : K.Body[I].Operands) {
      LastUse[Op] = I;
      Used[Op] = true;
    }
  }
  for (const Param &P : K.outputs()) {
    LastUse[P.Id] = NumStmts;
    Used[P.Id] = true;
  }

  PressureStats Stats;
  unsigned Live = 0, LiveWords = 0;
  // Inputs are live from entry until their last use.
  std::vector<std::vector<ValueId>> DiesAfter(NumStmts + 1);
  for (const Param &P : K.inputs()) {
    if (!Used[P.Id])
      continue;
    ++Live;
    LiveWords += wordsOf(K, P.Id, WordBits);
    DiesAfter[LastUse[P.Id]].push_back(P.Id);
  }
  Stats.MaxLive = Live;
  Stats.MaxLiveWords = LiveWords;

  for (size_t I = 0; I < NumStmts; ++I) {
    // Definitions become live (even momentarily dead ones occupy their
    // destination registers at the defining statement).
    for (ValueId R : K.Body[I].Results) {
      ++Live;
      LiveWords += wordsOf(K, R, WordBits);
      if (Used[R])
        DiesAfter[LastUse[R]].push_back(R);
    }
    if (LiveWords > Stats.MaxLiveWords) {
      Stats.MaxLiveWords = LiveWords;
      Stats.MaxLive = Live;
      Stats.PeakAt = I;
    }
    // Values whose last use was this statement die here; never-used
    // results die immediately after their definition.
    for (ValueId V : DiesAfter[I]) {
      --Live;
      LiveWords -= wordsOf(K, V, WordBits);
    }
    for (ValueId R : K.Body[I].Results) {
      if (!Used[R]) {
        --Live;
        LiveWords -= wordsOf(K, R, WordBits);
      }
    }
  }
  return Stats;
}

PressureStats moma::rewrite::scheduleForPressure(Kernel &K,
                                                 unsigned WordBits) {
  const size_t NumStmts = K.Body.size();

  // Dependence graph: a statement depends on the defining statement of
  // each operand. Straight-line SSA, so def-before-use already holds.
  std::vector<int> DefStmt(K.numValues(), -1);
  for (size_t I = 0; I < NumStmts; ++I)
    for (ValueId R : K.Body[I].Results)
      DefStmt[R] = static_cast<int>(I);

  std::vector<unsigned> PendingDeps(NumStmts, 0);
  std::vector<std::vector<size_t>> Dependents(NumStmts);
  for (size_t I = 0; I < NumStmts; ++I) {
    for (ValueId Op : K.Body[I].Operands) {
      int D = DefStmt[Op];
      if (D >= 0) {
        ++PendingDeps[I];
        Dependents[D].push_back(I);
      }
    }
  }

  // Remaining-use counts drive the kill heuristic.
  std::vector<unsigned> UsesLeft(K.numValues(), 0);
  for (const Stmt &S : K.Body)
    for (ValueId Op : S.Operands)
      ++UsesLeft[Op];
  for (const Param &P : K.outputs())
    ++UsesLeft[P.Id]; // outputs never fully die

  // Greedy list scheduling: among ready statements pick the one with the
  // best (frees - defines) word balance; break ties by original order to
  // keep the result deterministic.
  auto Score = [&](size_t I) {
    const Stmt &S = K.Body[I];
    int Freed = 0;
    for (ValueId Op : S.Operands)
      if (UsesLeft[Op] == 1)
        Freed += static_cast<int>(wordsOf(K, Op, WordBits));
    int Defined = 0;
    for (ValueId R : S.Results)
      Defined += static_cast<int>(wordsOf(K, R, WordBits));
    return Freed - Defined;
  };

  std::vector<size_t> Ready;
  for (size_t I = 0; I < NumStmts; ++I)
    if (PendingDeps[I] == 0)
      Ready.push_back(I);

  std::vector<size_t> Order;
  Order.reserve(NumStmts);
  while (!Ready.empty()) {
    size_t BestIdx = 0;
    int BestScore = Score(Ready[0]);
    for (size_t J = 1; J < Ready.size(); ++J) {
      int Sc = Score(Ready[J]);
      if (Sc > BestScore ||
          (Sc == BestScore && Ready[J] < Ready[BestIdx])) {
        BestScore = Sc;
        BestIdx = J;
      }
    }
    size_t Chosen = Ready[BestIdx];
    Ready.erase(Ready.begin() + static_cast<long>(BestIdx));
    Order.push_back(Chosen);

    for (ValueId Op : K.Body[Chosen].Operands) {
      assert(UsesLeft[Op] > 0);
      --UsesLeft[Op];
    }
    for (size_t Dep : Dependents[Chosen])
      if (--PendingDeps[Dep] == 0)
        Ready.push_back(Dep);
  }
  assert(Order.size() == NumStmts && "dependence cycle in straight-line IR");

  PressureStats Before = measurePressure(K, WordBits);
  std::vector<Stmt> OldBody = K.Body;
  std::vector<Stmt> NewBody;
  NewBody.reserve(NumStmts);
  for (size_t I : Order)
    NewBody.push_back(std::move(K.Body[I]));
  K.Body = std::move(NewBody);
  PressureStats After = measurePressure(K, WordBits);
  // The greedy order can lose to the emission order (which is already
  // chain-oriented for lowered kernels); never make things worse.
  if (After.MaxLiveWords > Before.MaxLiveWords) {
    K.Body = std::move(OldBody);
    return Before;
  }
  return After;
}
