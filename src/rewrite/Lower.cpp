//===- rewrite/Lower.cpp - MoMA recursive lowering pass --------------------===//

#include "rewrite/Lower.h"

#include "ir/Builder.h"
#include "support/Error.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_map>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using mw::Bignum;

namespace {

/// The [hi, lo] halves of a split value (rule 19).
struct Half {
  ValueId Hi = NoValue;
  ValueId Lo = NoValue;
};

/// A four-word value [w3, w2, w1, w0], least significant first; the "quad
/// word" of Listings 3/4 that full multiplication produces.
using Quad = std::array<ValueId, 4>;

/// One lowering round: rewrites all statements touching values of width
/// CurW into statements on CurW/2-bit values (the paper's single rewrite
/// step, applied recursively by lowerToWords).
/// Side table of sharper significant-bit bounds, keyed by value id; see
/// LoweredKernel::WordBounds.
using BoundMap = std::unordered_map<ValueId, unsigned>;

class LevelLowering {
public:
  LevelLowering(const Kernel &Old, const LowerOptions &Opts,
                const BoundMap *BoundsIn = nullptr,
                BoundMap *BoundsOut = nullptr)
      : Old(Old), Opts(Opts), Bld(NK), CurW(Old.maxBits()), H(CurW / 2),
        Single(Old.numValues(), NoValue), Pairs(Old.numValues()),
        BoundsIn(BoundsIn), BoundsOut(BoundsOut) {
    assert(CurW % 2 == 0 && "maximal width must be even to split");
    assert(CurW > Opts.TargetWordBits && "nothing to lower");
  }

  Kernel run(std::vector<std::pair<ValueId, ValueId>> *PairsOut);

private:
  // -- Value mapping ------------------------------------------------------

  ValueId mapSingle(ValueId OldId) const {
    assert(Single[OldId] != NoValue && "value not lowered yet");
    return Single[OldId];
  }

  Half mapPair(ValueId OldId) const {
    assert(Pairs[OldId].Hi != NoValue && "pair not lowered yet");
    return Pairs[OldId];
  }

  bool isCur(ValueId OldId) const { return Old.value(OldId).Bits == CurW; }

  void lowerInput(const Param &P);
  void lowerStmt(const Stmt &S);

  // -- Pair-level rule helpers (all emit width-H statements) --------------

  /// Rule (22)/(23): (carry, [hi, lo]) = A + B (+ Cin).
  std::pair<ValueId, Half> addPair(Half A, Half B, ValueId Cin = NoValue) {
    CarryResult Lo = Bld.add(A.Lo, B.Lo, Cin);
    CarryResult Hi = Bld.add(A.Hi, B.Hi, Lo.Carry);
    return {Hi.Carry, Half{Hi.Value, Lo.Value}};
  }

  /// Rule (25): (borrow, [hi, lo]) = A - B (- Bin).
  std::pair<ValueId, Half> subPair(Half A, Half B, ValueId Bin = NoValue) {
    CarryResult Lo = Bld.sub(A.Lo, B.Lo, Bin);
    CarryResult Hi = Bld.sub(A.Hi, B.Hi, Lo.Carry);
    return {Hi.Carry, Half{Hi.Value, Lo.Value}};
  }

  /// Rule (26): A < B on pairs.
  ValueId ltPair(Half A, Half B) {
    ValueId HiLt = Bld.lt(A.Hi, B.Hi);
    ValueId HiEq = Bld.eq(A.Hi, B.Hi);
    ValueId LoLt = Bld.lt(A.Lo, B.Lo);
    return Bld.bitOr(HiLt, Bld.bitAnd(HiEq, LoLt));
  }

  /// Rule (27): A == B on pairs.
  ValueId eqPair(Half A, Half B) {
    return Bld.bitAnd(Bld.eq(A.Hi, B.Hi), Bld.eq(A.Lo, B.Lo));
  }

  Half selectPair(ValueId Cond, Half A, Half B) {
    return Half{Bld.select(Cond, A.Hi, B.Hi), Bld.select(Cond, A.Lo, B.Lo)};
  }

  /// Rule (28)+(29): Quad = A * B, schoolbook on halves.
  Quad mulFullSchoolbook(Half A, Half B) {
    HiLoResult P0 = Bld.mul(A.Lo, B.Lo); // a_lo * b_lo
    HiLoResult P3 = Bld.mul(A.Hi, B.Hi); // a_hi * b_hi
    HiLoResult F = Bld.mul(A.Hi, B.Lo);
    HiLoResult G = Bld.mul(A.Lo, B.Hi);

    // Cross term C = F + G, a (2H+1)-bit value [Cc:1, Ch, Cl].
    CarryResult CrossLo = Bld.add(F.Lo, G.Lo);
    CarryResult CrossHi = Bld.add(F.Hi, G.Hi, CrossLo.Carry);
    ValueId CcWide = Bld.zext(H, CrossHi.Carry);

    // Accumulate [P3.Hi, P3.Lo, P0.Hi, P0.Lo] + [Cc, Ch, Cl, 0] (rule 29).
    CarryResult R1 = Bld.add(P0.Hi, CrossLo.Value);
    CarryResult R2 = Bld.add(P3.Lo, CrossHi.Value, R1.Carry);
    CarryResult R3 = Bld.add(P3.Hi, CcWide, R2.Carry);
    // R3.Carry is provably zero: the product fits 2*CurW bits.
    return Quad{P0.Lo, R1.Value, R2.Value, R3.Value};
  }

  /// Eq. (9): Quad = A * B via Karatsuba — three half multiplies plus the
  /// carry corrections for the half-sums.
  Quad mulFullKaratsuba(Half A, Half B) {
    HiLoResult P0 = Bld.mul(A.Lo, B.Lo);
    HiLoResult P3 = Bld.mul(A.Hi, B.Hi);
    CarryResult SA = Bld.add(A.Lo, A.Hi);
    CarryResult SB = Bld.add(B.Lo, B.Hi);
    HiLoResult PM = Bld.mul(SA.Value, SB.Value);

    // Middle term M = (SA + ca*2^H)(SB + cb*2^H) on three words
    // [M2, M1, M0]; ca*SB and cb*SA enter via selects, ca*cb via And.
    ValueId Zero = Bld.constantZero(H);
    ValueId SbOrZero = Bld.select(SA.Carry, SB.Value, Zero);
    ValueId SaOrZero = Bld.select(SB.Carry, SA.Value, Zero);
    ValueId BothCarries = Bld.bitAnd(SA.Carry, SB.Carry);

    ValueId M0 = PM.Lo;
    CarryResult M1a = Bld.add(PM.Hi, SbOrZero);
    CarryResult M1b = Bld.add(M1a.Value, SaOrZero);
    // M2 = carries + (ca & cb); all three are bits, sum <= 3 < 2^H.
    CarryResult M2a = Bld.add(Bld.zext(H, M1a.Carry), Bld.zext(H, M1b.Carry));
    CarryResult M2b = Bld.add(M2a.Value, Bld.zext(H, BothCarries));
    ValueId M2 = M2b.Value;
    ValueId M1 = M1b.Value;

    // M -= P0; M -= P3 (three-word subtractions; final borrows are zero
    // because the cross term a_lo*b_hi + a_hi*b_lo is non-negative).
    CarryResult S0 = Bld.sub(M0, P0.Lo);
    CarryResult S1 = Bld.sub(M1, P0.Hi, S0.Carry);
    CarryResult S2 = Bld.sub(M2, Zero, S1.Carry);
    CarryResult T0 = Bld.sub(S0.Value, P3.Lo);
    CarryResult T1 = Bld.sub(S1.Value, P3.Hi, T0.Carry);
    CarryResult T2 = Bld.sub(S2.Value, Zero, T1.Carry);

    // Result = P0 + M*2^H + P3*2^(2H) (rule 29 accumulation).
    CarryResult R1 = Bld.add(P0.Hi, T0.Value);
    CarryResult R2 = Bld.add(P3.Lo, T1.Value, R1.Carry);
    CarryResult R3 = Bld.add(P3.Hi, T2.Value, R2.Carry);
    return Quad{P0.Lo, R1.Value, R2.Value, R3.Value};
  }

  Quad mulFull(Half A, Half B) {
    return Opts.MulAlg == mw::MulAlgorithm::Karatsuba
               ? mulFullKaratsuba(A, B)
               : mulFullSchoolbook(A, B);
  }

  /// Low half of the product: [hi, lo] = (A * B) mod 2^CurW.
  Half mulLowPair(Half A, Half B) {
    HiLoResult P0 = Bld.mul(A.Lo, B.Lo);
    ValueId FL = Bld.mulLow(A.Hi, B.Lo);
    ValueId GL = Bld.mulLow(A.Lo, B.Hi);
    CarryResult R1a = Bld.add(P0.Hi, FL);
    CarryResult R1b = Bld.add(R1a.Value, GL);
    return Half{R1b.Value, P0.Lo};
  }

  /// Listing 4 `_qshr` generalized: [hi, lo] = Quad >> Amount, for any
  /// Amount with a result that fits two words.
  Half shrQuadToPair(const Quad &Q, unsigned Amount) {
    unsigned WordShift = Amount / H;
    unsigned BitShift = Amount % H;
    assert(WordShift <= 3 && "shift discards the whole quad");
    auto WordAt = [&](unsigned I) -> ValueId {
      return I < 4 ? Q[I] : Bld.constantZero(H);
    };
    auto Piece = [&](unsigned I) -> ValueId {
      ValueId LoPart = WordAt(I + WordShift);
      if (BitShift == 0)
        return Bld.copy(LoPart);
      ValueId HiPart = WordAt(I + WordShift + 1);
      return Bld.bitOr(Bld.shr(LoPart, BitShift),
                       Bld.shl(HiPart, H - BitShift));
    };
    ValueId Lo = Piece(0);
    ValueId Hi = Piece(1);
    return Half{Hi, Lo};
  }

  /// The sharpest significant-bit bound known for an old value: its
  /// KnownBits, refined by any bound a previous round recorded for it.
  unsigned boundOf(ValueId OldId) const {
    unsigned K = Old.value(OldId).KnownBits;
    if (BoundsIn) {
      auto It = BoundsIn->find(OldId);
      if (It != BoundsIn->end())
        K = std::min(K, It->second);
    }
    return K;
  }

  /// Records value < 2^B for a new value when B is sharper than the
  /// value's own KnownBits (B == 0: provably zero).
  void recordBound(ValueId NewId, unsigned B) {
    if (!BoundsOut || B >= NK.value(NewId).KnownBits)
      return;
    auto [It, Inserted] = BoundsOut->emplace(NewId, B);
    if (!Inserted)
      It->second = std::min(It->second, B);
  }

  /// Registers the lowering of an old CurW-wide value. The halves were
  /// built with the generic KnownBits formulas; when the old value's bound
  /// is sharper (rule 19 distributes it across the halves) the loss is
  /// recorded in the bounds side table rather than in the half ValueInfos,
  /// keeping the emitted kernel independent of the table.
  void bindPair(ValueId OldId, Half P) {
    assert(isCur(OldId) && "pair binding for a non-CurW value");
    Pairs[OldId] = P;
    if (BoundsOut) {
      unsigned K = boundOf(OldId);
      recordBound(P.Hi, K > H ? K - H : 0);
      recordBound(P.Lo, std::min(K, H));
    }
  }

  void bindSingle(ValueId OldId, ValueId NewId) {
    Single[OldId] = NewId;
    if (BoundsOut)
      recordBound(NewId, boundOf(OldId));
  }

  Kernel NK;
  const Kernel &Old;
  LowerOptions Opts;
  Builder Bld;
  unsigned CurW, H;
  std::vector<ValueId> Single;
  std::vector<Half> Pairs;
  const BoundMap *BoundsIn;
  BoundMap *BoundsOut;
};

} // namespace

void LevelLowering::lowerInput(const Param &P) {
  const ValueInfo &V = Old.value(P.Id);
  if (V.Bits != CurW) {
    ValueId NewId = NK.newValue(V.Bits, P.Name, V.KnownBits);
    NK.addInput(NewId, P.Name);
    bindSingle(P.Id, NewId);
    return;
  }
  // Rule (19) on a kernel input. A hi half with no significant bits is the
  // paper's non-power-of-two pruning: it becomes a constant zero, not a
  // parameter (Eq. 35/36).
  unsigned HiKnown = V.KnownBits > H ? V.KnownBits - H : 0;
  unsigned LoKnown = std::min(V.KnownBits, H);
  Half Halves;
  if (HiKnown == 0) {
    Halves.Hi = Bld.constant(H, Bignum(0), P.Name + "0");
  } else {
    Halves.Hi = NK.newValue(H, P.Name + "0", HiKnown);
    NK.addInput(Halves.Hi, P.Name + "0");
  }
  Halves.Lo = NK.newValue(H, P.Name + "1", std::max(1u, LoKnown));
  NK.addInput(Halves.Lo, P.Name + "1");
  bindPair(P.Id, Halves);
}

void LevelLowering::lowerStmt(const Stmt &S) {
  // Statements not touching CurW values clone straight across.
  bool TouchesCur = false;
  for (ValueId Id : S.Operands)
    TouchesCur |= isCur(Id);
  for (ValueId Id : S.Results)
    TouchesCur |= isCur(Id);
  if (!TouchesCur) {
    Stmt Clone = S;
    for (ValueId &Id : Clone.Operands)
      Id = mapSingle(Id);
    for (ValueId &Id : Clone.Results) {
      const ValueInfo &V = Old.value(Id);
      ValueId NewId = NK.newValue(V.Bits, V.Name, V.KnownBits);
      bindSingle(Id, NewId);
      Id = NewId;
    }
    NK.Body.push_back(std::move(Clone));
    return;
  }

  switch (S.Kind) {
  case OpKind::Const: {
    // Rule (19) on a literal: split into hi/lo constants.
    Half P;
    P.Hi = Bld.constant(H, S.Literal >> H);
    P.Lo = Bld.constant(H, S.Literal.truncate(H));
    bindPair(S.Results[0], P);
    return;
  }
  case OpKind::Copy:
    bindPair(S.Results[0], mapPair(S.Operands[0]));
    return;
  case OpKind::Zext: {
    const ValueInfo &OpV = Old.value(S.Operands[0]);
    Half P;
    P.Hi = Bld.constantZero(H);
    if (OpV.Bits == H)
      P.Lo = Bld.copy(mapSingle(S.Operands[0]));
    else
      P.Lo = Bld.zext(H, mapSingle(S.Operands[0]));
    bindPair(S.Results[0], P);
    return;
  }
  case OpKind::Add: {
    ValueId Cin =
        S.Operands.size() == 3 ? mapSingle(S.Operands[2]) : NoValue;
    auto [Carry, Sum] =
        addPair(mapPair(S.Operands[0]), mapPair(S.Operands[1]), Cin);
    bindSingle(S.Results[0], Carry);
    bindPair(S.Results[1], Sum);
    return;
  }
  case OpKind::Sub: {
    ValueId Bin =
        S.Operands.size() == 3 ? mapSingle(S.Operands[2]) : NoValue;
    auto [Borrow, Diff] =
        subPair(mapPair(S.Operands[0]), mapPair(S.Operands[1]), Bin);
    bindSingle(S.Results[0], Borrow);
    bindPair(S.Results[1], Diff);
    return;
  }
  case OpKind::Mul: {
    Quad Q = mulFull(mapPair(S.Operands[0]), mapPair(S.Operands[1]));
    bindPair(S.Results[0], Half{Q[3], Q[2]});
    bindPair(S.Results[1], Half{Q[1], Q[0]});
    return;
  }
  case OpKind::MulLow:
    bindPair(S.Results[0],
             mulLowPair(mapPair(S.Operands[0]), mapPair(S.Operands[1])));
    return;
  case OpKind::AddMod: {
    // Rules (22) + (24): full-width sum with top carry D0, then compare
    // against q and conditionally subtract. We subtract when the sum >= q,
    // i.e. keep the sum only when !D0 && sum < q (fixing the paper's
    // strict-< off-by-one, see DESIGN.md).
    Half A = mapPair(S.Operands[0]);
    Half BB = mapPair(S.Operands[1]);
    Half Q = mapPair(S.Operands[2]);
    auto [D0, Sum] = addPair(A, BB);
    ValueId SumLtQ = ltPair(Sum, Q);
    ValueId Keep = Bld.bitAnd(Bld.logicalNot(D0), SumLtQ);
    auto [Borrow, Diff] = subPair(Sum, Q);
    (void)Borrow; // dead: when we select Diff the subtraction cannot borrow
                  // past the implicit 2^(2H) from D0
    bindPair(S.Results[0], selectPair(Keep, Sum, Diff));
    return;
  }
  case OpKind::SubMod: {
    // Listing 2 `_dsubmod`: subtract, add q back, select on the borrow.
    Half A = mapPair(S.Operands[0]);
    Half BB = mapPair(S.Operands[1]);
    Half Q = mapPair(S.Operands[2]);
    auto [Borrow, Diff] = subPair(A, BB);
    auto [Carry, Fixed] = addPair(Diff, Q);
    (void)Carry; // dead: wraps back into range exactly when Borrow is set
    bindPair(S.Results[0], selectPair(Borrow, Fixed, Diff));
    return;
  }
  case OpKind::MulMod: {
    // Listing 4 `_dmulmod`: Barrett reduction on pairs.
    Half A = mapPair(S.Operands[0]);
    Half BB = mapPair(S.Operands[1]);
    Half Q = mapPair(S.Operands[2]);
    Half Mu = mapPair(S.Operands[3]);
    unsigned M = S.ModBits;

    Quad T = mulFull(A, BB);                   // t = a*b
    Half R1 = shrQuadToPair(T, M - 2);         // r1 = t >> (m-2)
    Quad U = mulFull(R1, Mu);                  // r2 = r1 * mu
    Half E = shrQuadToPair(U, M + 5);          // e = r2 >> (m+5)
    Half P = mulLowPair(E, Q);                 // p = (e * q) mod 2^(2H)
    Half TLow{T[1], T[0]};
    auto [Borrow, C] = subPair(TLow, P);       // c = t - e*q (fits a pair)
    (void)Borrow;                              // provably zero: e <= t/q
    ValueId CLtQ = ltPair(C, Q);
    auto [Borrow2, D] = subPair(C, Q);
    (void)Borrow2;
    bindPair(S.Results[0], selectPair(CLtQ, C, D));
    return;
  }
  case OpKind::Lt:
    bindSingle(S.Results[0],
               ltPair(mapPair(S.Operands[0]), mapPair(S.Operands[1])));
    return;
  case OpKind::Eq:
    bindSingle(S.Results[0],
               eqPair(mapPair(S.Operands[0]), mapPair(S.Operands[1])));
    return;
  case OpKind::Not:
    moma_unreachable("Not operates on flags and never touches CurW");
  case OpKind::And:
  case OpKind::Or:
  case OpKind::Xor: {
    Half A = mapPair(S.Operands[0]);
    Half BB = mapPair(S.Operands[1]);
    auto EmitHalf = [&](ValueId X, ValueId Y) {
      switch (S.Kind) {
      case OpKind::And:
        return Bld.bitAnd(X, Y);
      case OpKind::Or:
        return Bld.bitOr(X, Y);
      default:
        return Bld.bitXor(X, Y);
      }
    };
    bindPair(S.Results[0], Half{EmitHalf(A.Hi, BB.Hi), EmitHalf(A.Lo, BB.Lo)});
    return;
  }
  case OpKind::Shr: {
    Half A = mapPair(S.Operands[0]);
    unsigned K = S.Amount;
    Half R;
    if (K == 0) {
      R = Half{Bld.copy(A.Hi), Bld.copy(A.Lo)};
    } else if (K < H) {
      R.Lo = Bld.bitOr(Bld.shr(A.Lo, K), Bld.shl(A.Hi, H - K));
      R.Hi = Bld.shr(A.Hi, K);
    } else if (K == H) {
      R.Lo = Bld.copy(A.Hi);
      R.Hi = Bld.constantZero(H);
    } else {
      R.Lo = Bld.shr(A.Hi, K - H);
      R.Hi = Bld.constantZero(H);
    }
    bindPair(S.Results[0], R);
    return;
  }
  case OpKind::Shl: {
    Half A = mapPair(S.Operands[0]);
    unsigned K = S.Amount;
    Half R;
    if (K == 0) {
      R = Half{Bld.copy(A.Hi), Bld.copy(A.Lo)};
    } else if (K < H) {
      R.Hi = Bld.bitOr(Bld.shl(A.Hi, K), Bld.shr(A.Lo, H - K));
      R.Lo = Bld.shl(A.Lo, K);
    } else if (K == H) {
      R.Hi = Bld.copy(A.Lo);
      R.Lo = Bld.constantZero(H);
    } else {
      R.Hi = Bld.shl(A.Lo, K - H);
      R.Lo = Bld.constantZero(H);
    }
    bindPair(S.Results[0], R);
    return;
  }
  case OpKind::Select: {
    ValueId Cond = mapSingle(S.Operands[0]);
    bindPair(S.Results[0], selectPair(Cond, mapPair(S.Operands[1]),
                                      mapPair(S.Operands[2])));
    return;
  }
  case OpKind::Split: {
    // Rules (20)/(21): at this level a split is pure wiring — the halves
    // already exist.
    Half A = mapPair(S.Operands[0]);
    bindSingle(S.Results[0], Bld.copy(A.Hi));
    bindSingle(S.Results[1], Bld.copy(A.Lo));
    return;
  }
  case OpKind::Concat: {
    Half P;
    P.Hi = Bld.copy(mapSingle(S.Operands[0]));
    P.Lo = Bld.copy(mapSingle(S.Operands[1]));
    bindPair(S.Results[0], P);
    return;
  }
  }
  moma_unreachable("unhandled opcode in lowering");
}

Kernel LevelLowering::run(std::vector<std::pair<ValueId, ValueId>> *PairsOut) {
  NK.Name = Old.Name;
  for (const Param &P : Old.inputs())
    lowerInput(P);
  for (const Stmt &S : Old.Body)
    lowerStmt(S);
  for (const Param &P : Old.outputs()) {
    if (!isCur(P.Id)) {
      NK.addOutput(mapSingle(P.Id), P.Name);
      continue;
    }
    Half Halves = mapPair(P.Id);
    NK.addOutput(Halves.Hi, P.Name + "0");
    NK.addOutput(Halves.Lo, P.Name + "1");
  }
  if (PairsOut) {
    PairsOut->clear();
    PairsOut->resize(Old.numValues(), {NoValue, NoValue});
    for (size_t I = 0; I < Old.numValues(); ++I) {
      if (Pairs[I].Hi != NoValue)
        (*PairsOut)[I] = {Pairs[I].Hi, Pairs[I].Lo};
      else
        (*PairsOut)[I] = {Single[I], NoValue};
    }
  }
  return std::move(NK);
}

Kernel moma::rewrite::lowerOneLevel(
    const Kernel &K, const LowerOptions &Opts,
    std::vector<std::pair<ValueId, ValueId>> *PairsOut) {
  return LevelLowering(K, Opts).run(PairsOut);
}

LoweredKernel moma::rewrite::lowerToWords(const Kernel &K,
                                          const LowerOptions &Opts) {
  if (Opts.TargetWordBits < 8 ||
      (Opts.TargetWordBits & (Opts.TargetWordBits - 1)) != 0)
    fatalError("lowerToWords: target word width must be a power of two >= 8");

  LoweredKernel Out;
  Out.K = K;

  // Seed the port word lists with the original single values.
  auto SeedPorts = [&](const std::vector<Param> &Ports,
                       std::vector<LoweredPort> &Dst) {
    for (const Param &P : Ports) {
      LoweredPort LP;
      LP.Name = P.Name;
      LP.ContainerBits = K.value(P.Id).Bits;
      LP.KnownBits = K.value(P.Id).KnownBits;
      LP.WordBits = Opts.TargetWordBits;
      LP.Words = {P.Id};
      LP.IsConstZero = {false};
      Dst.push_back(std::move(LP));
    }
  };
  SeedPorts(K.inputs(), Out.Inputs);
  SeedPorts(K.outputs(), Out.Outputs);

  std::vector<std::pair<ValueId, ValueId>> Map;
  BoundMap Bounds;
  while (Out.K.maxBits() > Opts.TargetWordBits) {
    unsigned CurW = Out.K.maxBits();
    BoundMap NextBounds;
    Kernel Next = LevelLowering(Out.K, Opts, &Bounds, &NextBounds).run(&Map);
    Bounds = std::move(NextBounds);
    ++Out.Rounds;

    // Re-derive every port's word list through the round's value map.
    // Input-port words that are not parameters of the new kernel are the
    // statically pruned zeros; output-port words are computed values and
    // are never pruned by the round itself.
    std::vector<bool> IsNextInput(Next.numValues(), false);
    for (const Param &P : Next.inputs())
      IsNextInput[P.Id] = true;
    auto Remap = [&](std::vector<LoweredPort> &Ports, bool InputSide) {
      for (LoweredPort &LP : Ports) {
        std::vector<ValueId> NewWords;
        std::vector<bool> NewZero;
        for (size_t I = 0; I < LP.Words.size(); ++I) {
          auto [A, B] = Map[LP.Words[I]];
          NewWords.push_back(A);
          NewZero.push_back(InputSide && !IsNextInput[A]);
          if (B != NoValue) {
            NewWords.push_back(B);
            NewZero.push_back(InputSide && !IsNextInput[B]);
          }
        }
        LP.Words = std::move(NewWords);
        LP.IsConstZero = std::move(NewZero);
      }
    };
    Remap(Out.Inputs, /*InputSide=*/true);
    Remap(Out.Outputs, /*InputSide=*/false);
    Out.K = std::move(Next);
    if (Out.K.maxBits() >= CurW)
      fatalError("lowerToWords: lowering failed to reduce the widths");
  }
  // Publish the last round's surviving bounds, sorted for determinism.
  Out.WordBounds.assign(Bounds.begin(), Bounds.end());
  std::sort(Out.WordBounds.begin(), Out.WordBounds.end());
  return Out;
}
