//===- rewrite/PassManager.cpp - Composable IR pass pipeline --------------===//

#include "rewrite/PassManager.h"

#include "rewrite/Passes.h"
#include "rewrite/Stats.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using mw::Bignum;

//===----------------------------------------------------------------------===//
// AnalysisCache
//===----------------------------------------------------------------------===//

const std::vector<unsigned> &AnalysisCache::useCounts(const Kernel &K) {
  if (!UseCountsValid) {
    UseCounts.assign(K.numValues(), 0);
    for (const Stmt &S : K.Body)
      for (ValueId Op : S.Operands)
        ++UseCounts[Op];
    for (const Param &P : K.outputs())
      ++UseCounts[P.Id];
    UseCountsValid = true;
  }
  return UseCounts;
}

//===----------------------------------------------------------------------===//
// KernelRebuilder
//===----------------------------------------------------------------------===//

KernelRebuilder::KernelRebuilder(const Kernel &Old)
    : Old(Old), Subst(Old.numValues()), UseCount(Old.numValues(), 0) {
  for (const Stmt &S : Old.Body)
    for (ValueId Op : S.Operands)
      ++UseCount[Op];
  for (const Param &P : Old.outputs())
    ++UseCount[P.Id];
  ConstVals.reserve(Old.numValues());
  HasConst.reserve(Old.numValues());
  SmallConstCache.reserve(64);
}

const Bignum *KernelRebuilder::constOf(ValueId NewId) const {
  if (static_cast<size_t>(NewId) >= HasConst.size() || !HasConst[NewId])
    return nullptr;
  return &ConstVals[NewId];
}

bool KernelRebuilder::isZero(ValueId NewId) const {
  const Bignum *C = constOf(NewId);
  return C && C->isZero();
}

bool KernelRebuilder::isOne(ValueId NewId) const {
  const Bignum *C = constOf(NewId);
  return C && C->isOne();
}

ValueId KernelRebuilder::emitConst(unsigned Bits, const Bignum &V) {
  if (V.bitWidth() <= 64) {
    auto It = SmallConstCache.find({Bits, V.low64()});
    if (It != SmallConstCache.end())
      return It->second;
  }
  // Copy first: \p V may alias ConstVals (passes hand constOf() results
  // straight back in), which the resize below would invalidate.
  Bignum Val = V;
  bool Small = Val.bitWidth() <= 64;
  std::uint64_t Low = Small ? Val.low64() : 0;
  ValueId Id = NK.newValue(Bits, "", std::max(1u, Val.bitWidth()));
  Stmt S;
  S.Kind = OpKind::Const;
  S.Results = {Id};
  S.Literal = Val;
  NK.Body.push_back(std::move(S));
  if (static_cast<size_t>(Id) >= HasConst.size()) {
    ConstVals.resize(Id + 1);
    HasConst.resize(Id + 1, false);
  }
  ConstVals[Id] = std::move(Val);
  HasConst[Id] = true;
  if (Small)
    SmallConstCache[{Bits, Low}] = Id;
  return Id;
}

ValueId KernelRebuilder::newResult(unsigned Bits, unsigned Known) {
  return NK.newValue(Bits, "", std::min(Bits, std::max(1u, Known)));
}

Stmt &KernelRebuilder::emit(OpKind Kind, std::vector<ValueId> Results,
                            std::vector<ValueId> Operands) {
  Stmt S;
  S.Kind = Kind;
  S.Results = std::move(Results);
  S.Operands = std::move(Operands);
  NK.Body.push_back(std::move(S));
  return NK.Body.back();
}

Stmt &KernelRebuilder::emitDefault(const Stmt &S,
                                   const std::vector<ValueId> &Ops) {
  auto ResultBits = [&](unsigned I) { return Old.value(S.Results[I]).Bits; };
  // The recomputed KnownBits never loosens past what was already proved
  // for the old result. For the default passes this is a no-op (their
  // formulas are monotone in the operand bounds, which only tighten), but
  // it keeps the range pass's interval-derived tightenings sticky across
  // later sweeps instead of re-proving them forever.
  auto Clamp = [&](unsigned I, unsigned Formula) {
    return std::min(Formula, std::max(1u, Old.value(S.Results[I]).KnownBits));
  };

  switch (S.Kind) {
  case OpKind::Const:
    moma_unreachable("Const is interned by the rebuild walk");
  case OpKind::Copy: {
    ValueId R = newResult(ResultBits(0), Clamp(0, known(Ops[0])));
    Stmt &NS = emit(OpKind::Copy, {R}, {Ops[0]});
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Zext: {
    ValueId R = newResult(ResultBits(0), Clamp(0, known(Ops[0])));
    Stmt &NS = emit(OpKind::Zext, {R}, {Ops[0]});
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Add: {
    unsigned W = ResultBits(1);
    unsigned Bound = std::max(known(Ops[0]), known(Ops[1])) + 1;
    ValueId Carry = NK.newValue(1);
    ValueId Sum = newResult(W, Clamp(1, std::min(W, Bound)));
    Stmt &NS = emit(OpKind::Add, {Carry, Sum}, Ops);
    bind(S.Results[0], Carry);
    bind(S.Results[1], Sum);
    return NS;
  }
  case OpKind::Sub: {
    unsigned W = ResultBits(1);
    ValueId Borrow = NK.newValue(1);
    ValueId Diff = newResult(W, Clamp(1, W));
    Stmt &NS = emit(OpKind::Sub, {Borrow, Diff}, Ops);
    bind(S.Results[0], Borrow);
    bind(S.Results[1], Diff);
    return NS;
  }
  case OpKind::Mul: {
    unsigned W = ResultBits(1);
    unsigned KBound = known(Ops[0]) + known(Ops[1]);
    ValueId Hi =
        newResult(W, Clamp(0, KBound > W ? std::min(W, KBound - W) : 1));
    ValueId Lo = newResult(W, Clamp(1, W));
    Stmt &NS = emit(OpKind::Mul, {Hi, Lo}, Ops);
    bind(S.Results[0], Hi);
    bind(S.Results[1], Lo);
    return NS;
  }
  case OpKind::MulLow: {
    unsigned W = ResultBits(0);
    ValueId R = newResult(W, Clamp(0, known(Ops[0]) + known(Ops[1])));
    Stmt &NS = emit(OpKind::MulLow, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::AddMod:
  case OpKind::SubMod: {
    ValueId R = newResult(ResultBits(0), Clamp(0, known(Ops[2])));
    Stmt &NS = emit(S.Kind, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::MulMod: {
    ValueId R = newResult(ResultBits(0), Clamp(0, known(Ops[2])));
    Stmt &NS = emit(OpKind::MulMod, {R}, Ops);
    NS.ModBits = S.ModBits;
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Lt:
  case OpKind::Eq:
  case OpKind::Not: {
    ValueId R = NK.newValue(1);
    Stmt &NS = emit(S.Kind, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::And: {
    ValueId R = newResult(ResultBits(0),
                          Clamp(0, std::min(known(Ops[0]), known(Ops[1]))));
    Stmt &NS = emit(OpKind::And, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Or:
  case OpKind::Xor: {
    ValueId R = newResult(ResultBits(0),
                          Clamp(0, std::max(known(Ops[0]), known(Ops[1]))));
    Stmt &NS = emit(S.Kind, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Shl: {
    unsigned W = ResultBits(0);
    ValueId R = newResult(W, Clamp(0, std::min(W, known(Ops[0]) + S.Amount)));
    Stmt &NS = emit(OpKind::Shl, {R}, Ops);
    NS.Amount = S.Amount;
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Shr: {
    unsigned W = ResultBits(0);
    unsigned K = known(Ops[0]);
    ValueId R = newResult(W, Clamp(0, K > S.Amount ? K - S.Amount : 1));
    Stmt &NS = emit(OpKind::Shr, {R}, Ops);
    NS.Amount = S.Amount;
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Select: {
    ValueId R = newResult(ResultBits(0),
                          Clamp(0, std::max(known(Ops[1]), known(Ops[2]))));
    Stmt &NS = emit(OpKind::Select, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  case OpKind::Split: {
    unsigned HalfW = ResultBits(0);
    unsigned K = known(Ops[0]);
    ValueId Hi = newResult(HalfW, Clamp(0, K > HalfW ? K - HalfW : 1));
    ValueId Lo = newResult(HalfW, Clamp(1, std::min(K, HalfW)));
    Stmt &NS = emit(OpKind::Split, {Hi, Lo}, Ops);
    bind(S.Results[0], Hi);
    bind(S.Results[1], Lo);
    return NS;
  }
  case OpKind::Concat: {
    unsigned HalfW = widthOf(Ops[1]);
    ValueId R = newResult(ResultBits(0),
                          Clamp(0, isZero(Ops[0]) ? known(Ops[1])
                                                  : HalfW + known(Ops[0])));
    Stmt &NS = emit(OpKind::Concat, {R}, Ops);
    bind(S.Results[0], R);
    return NS;
  }
  }
  moma_unreachable("unhandled opcode in emitDefault");
}

PassResult KernelRebuilder::rebuild(Kernel &K, const RewriteHook &Hook,
                                    const EmitObserver &Observer) {
  NK.Name = Old.Name;
  for (const Param &P : Old.inputs()) {
    const ValueInfo &V = Old.value(P.Id);
    ValueId NewId = NK.newValue(V.Bits, V.Name, V.KnownBits);
    NK.addInput(NewId, P.Name);
    bind(P.Id, NewId);
  }

  std::vector<ValueId> Ops;
  std::vector<const Bignum *> CV;
  for (const Stmt &S : Old.Body) {
    Ops.clear();
    CV.clear();
    bool AllConst = true;
    for (ValueId Id : S.Operands) {
      Ops.push_back(Subst[Id]);
      CV.push_back(constOf(Ops.back()));
      AllConst &= CV.back() != nullptr;
    }
    if (S.Kind == OpKind::Const) {
      bindConst(S.Results[0], S.Literal);
      continue;
    }
    if (Hook && Hook(S, Ops, CV, AllConst))
      continue;
    Stmt &NS = emitDefault(S, Ops);
    if (Observer)
      Observer(S, NS);
  }

  for (const Param &P : Old.outputs())
    NK.addOutput(Subst[P.Id], P.Name);

  // A walk that found nothing (and did not even merge constants) is
  // discarded so the caller's value ids stay stable at the fixpoint.
  if (Changes == 0 && NK.Body.size() == Old.Body.size())
    return {};

  PassResult R;
  R.Changes = Changes;
  R.Subst = std::move(Subst);
  K = std::move(NK);
  return R;
}

//===----------------------------------------------------------------------===//
// RebuildPass
//===----------------------------------------------------------------------===//

PassResult RebuildPass::run(Kernel &K, AnalysisCache &AC) {
  CurAC = &AC;
  KernelRebuilder RB(K);
  begin(RB);
  return RB.rebuild(
      K,
      [this, &RB](const Stmt &S, const std::vector<ValueId> &Ops,
                  const std::vector<const Bignum *> &CV, bool AllConst) {
        return tryRewrite(RB, S, Ops, CV, AllConst);
      },
      [this, &RB](const Stmt &OldS, const Stmt &NewS) {
        observeDefault(RB, OldS, NewS);
      });
}

//===----------------------------------------------------------------------===//
// PipelineStats
//===----------------------------------------------------------------------===//

unsigned PipelineStats::totalChanges() const {
  unsigned N = 0;
  for (const PassStats &P : PerPass)
    N += P.Changes;
  return N;
}

unsigned PipelineStats::totalRemoved() const {
  unsigned N = 0;
  for (const PassStats &P : PerPass)
    N += P.Removed;
  return N;
}

const PassStats *PipelineStats::pass(const std::string &Name) const {
  for (const PassStats &P : PerPass)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::string PipelineStats::report() const {
  std::string Out;
  for (const PassStats &P : PerPass)
    Out += formatv("  %-10s runs=%-3u changes=%-5u removed=%-5u "
                   "stmts=%+-5d mul=%+-4d addsub=%+d\n",
                   P.Name.c_str(), P.Runs, P.Changes, P.Removed, P.StmtDelta,
                   P.MulDelta, P.AddSubDelta);
  Out += formatv("  iterations=%u converged=%s\n", Iterations,
                 Converged ? "yes" : "no");
  return Out;
}

//===----------------------------------------------------------------------===//
// PassPipeline
//===----------------------------------------------------------------------===//

PipelineStats PassPipeline::initStats() const {
  PipelineStats S;
  S.PerPass.resize(Passes.size());
  for (size_t I = 0; I < Passes.size(); ++I)
    S.PerPass[I].Name = Passes[I]->name();
  return S;
}

static void accumulateStats(PipelineStats &Total, const PipelineStats &Iter) {
  for (size_t I = 0; I < Total.PerPass.size(); ++I) {
    PassStats &T = Total.PerPass[I];
    const PassStats &S = Iter.PerPass[I];
    T.Runs += S.Runs;
    T.Changes += S.Changes;
    T.Removed += S.Removed;
    T.StmtDelta += S.StmtDelta;
    T.MulDelta += S.MulDelta;
    T.AddSubDelta += S.AddSubDelta;
  }
}

unsigned PassPipeline::sweep(Kernel &K, AnalysisCache &AC,
                             PipelineStats &Stats,
                             std::vector<ValueId> *TotalSubst) {
  unsigned Work = 0;
  for (size_t I = 0; I < Passes.size(); ++I) {
    PassStats &PS = Stats.PerPass[I];
    size_t StmtsBefore = K.Body.size();
    OpStats Before = countOps(K);
    PassResult R = Passes[I]->run(K, AC);
    ++PS.Runs;
    PS.Changes += R.Changes;
    PS.Removed += R.Removed;
    OpStats After = countOps(K);
    PS.StmtDelta += static_cast<int>(K.Body.size()) -
                    static_cast<int>(StmtsBefore);
    PS.MulDelta += static_cast<int>(After.multiplies()) -
                   static_cast<int>(Before.multiplies());
    PS.AddSubDelta += static_cast<int>(After.addSubs()) -
                      static_cast<int>(Before.addSubs());
    Work += R.Changes + R.Removed;
    if (!R.Subst.empty()) {
      AC.invalidate();
      if (LoweredKernel *L = AC.lowered()) {
        auto Remap = [&](std::vector<LoweredPort> &Ports) {
          for (LoweredPort &P : Ports)
            for (ValueId &W : P.Words)
              W = R.Subst[W];
        };
        Remap(L->Inputs);
        Remap(L->Outputs);
        for (auto &BP : L->WordBounds)
          BP.first = R.Subst[BP.first];
      }
      if (TotalSubst)
        for (ValueId &V : *TotalSubst)
          V = R.Subst[V];
    } else if (R.Changes || R.Removed) {
      AC.invalidate();
    }
  }
  return Work;
}

static PipelineStats runPipeline(PassPipeline &P, Kernel &K,
                                 AnalysisCache &AC, unsigned MaxIters,
                                 PipelineStats Total) {
  PipelineStats Last;
  for (unsigned I = 0; I < MaxIters; ++I) {
    PipelineStats Iter = P.initStats();
    size_t Before = K.Body.size();
    unsigned Work = P.sweep(K, AC, Iter, nullptr);
    accumulateStats(Total, Iter);
    ++Total.Iterations;
    Last = std::move(Iter);
    if (Work == 0 && K.Body.size() == Before)
      return Total;
  }
  // Satellite of ISSUE 6: the silent MaxIters cap used to hide
  // non-converging rule interactions; name the kernel and show what the
  // last sweep kept doing.
  Total.Converged = false;
  std::fprintf(stderr,
               "moma: simplify pipeline did not converge on kernel '%s' "
               "after %u iterations; last sweep:\n%s",
               K.Name.c_str(), MaxIters, Last.report().c_str());
  return Total;
}

PipelineStats PassPipeline::run(Kernel &K, unsigned MaxIters) {
  AnalysisCache AC;
  return runPipeline(*this, K, AC, MaxIters, initStats());
}

PipelineStats PassPipeline::runLowered(LoweredKernel &L, unsigned MaxIters) {
  AnalysisCache AC(&L);
  return runPipeline(*this, L.K, AC, MaxIters, initStats());
}

//===----------------------------------------------------------------------===//
// Catalog
//===----------------------------------------------------------------------===//

namespace {

struct CatalogEntry {
  const char *Name;
  std::unique_ptr<Pass> (*Make)();
};

template <typename T> std::unique_ptr<Pass> make() {
  return std::make_unique<T>();
}

const CatalogEntry Catalog[] = {
    {"constfold", make<ConstFoldPass>},
    {"algebraic", make<AlgebraicIdentitiesPass>},
    {"knownbits", make<KnownBitsStrengthReducePass>},
    {"range", make<RangeAnalysisPass>},
    {"cse", make<CsePass>},
    {"copyprop", make<CopyPropPass>},
    {"dce", make<DcePass>},
    {"deadports", make<DeadPortEliminationPass>},
};

} // namespace

std::vector<std::string> moma::rewrite::passCatalog() {
  std::vector<std::string> Names;
  for (const CatalogEntry &E : Catalog)
    Names.push_back(E.Name);
  return Names;
}

std::unique_ptr<Pass> moma::rewrite::createPass(const std::string &Name) {
  for (const CatalogEntry &E : Catalog)
    if (Name == E.Name)
      return E.Make();
  return nullptr;
}

PassPipeline moma::rewrite::defaultPipeline() {
  PassPipeline P;
  P.add(make<ConstFoldPass>())
      .add(make<AlgebraicIdentitiesPass>())
      .add(make<KnownBitsStrengthReducePass>())
      .add(make<CopyPropPass>())
      .add(make<DcePass>());
  return P;
}

PassPipeline moma::rewrite::extendedPipeline() {
  PassPipeline P;
  P.add(make<ConstFoldPass>())
      .add(make<AlgebraicIdentitiesPass>())
      .add(make<KnownBitsStrengthReducePass>())
      .add(make<RangeAnalysisPass>())
      .add(make<CsePass>())
      .add(make<CopyPropPass>())
      .add(make<DcePass>())
      .add(make<DeadPortEliminationPass>());
  return P;
}

bool moma::rewrite::parsePipeline(const std::string &Spec, PassPipeline &Out,
                                  std::string *Err) {
  if (Spec == "default" || Spec.empty()) {
    Out = defaultPipeline();
    return true;
  }
  if (Spec == "extended") {
    Out = extendedPipeline();
    return true;
  }
  PassPipeline P;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Name = Spec.substr(Pos, Comma - Pos);
    if (!Name.empty()) {
      std::unique_ptr<Pass> Pass = createPass(Name);
      if (!Pass) {
        if (Err)
          *Err = formatv("unknown pass '%s' (catalog: %s)", Name.c_str(),
                         [] {
                           std::string All;
                           for (const CatalogEntry &E : Catalog) {
                             if (!All.empty())
                               All += ", ";
                             All += E.Name;
                           }
                           return All;
                         }()
                             .c_str());
        return false;
      }
      P.add(std::move(Pass));
    }
    Pos = Comma + 1;
  }
  if (P.size() == 0) {
    if (Err)
      *Err = "empty pass list";
    return false;
  }
  Out = std::move(P);
  return true;
}
