//===- rewrite/Schedule.h - Live ranges and list scheduling ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-pressure analysis and a pressure-aware list scheduler for
/// lowered kernels.
///
/// The paper observes its generated kernels hitting compiler limits at
/// large widths (§5.3: 384-bit NTTs "running out of the stack space
/// during compilation" at size 2^21; 768-bit degrading past 2^20 as
/// "hardware or compiler limits are being approached"). The proximate
/// resource is live machine words: a lowered 768-bit butterfly keeps
/// hundreds of 64-bit values alive, far beyond the 255-register CUDA
/// budget, so everything beyond spills. maxLiveWords quantifies that
/// pressure and scheduleForPressure greedily reorders statements (within
/// dependences) to shrink it — an ablation knob DESIGN.md calls out.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_SCHEDULE_H
#define MOMA_REWRITE_SCHEDULE_H

#include "ir/Ir.h"

namespace moma {
namespace rewrite {

/// Live-range statistics for a kernel.
struct PressureStats {
  /// Peak number of simultaneously live values.
  unsigned MaxLive = 0;
  /// Peak live storage in machine words (a 1-bit flag counts as one word,
  /// as it does in a register file).
  unsigned MaxLiveWords = 0;
  /// Statement index where the peak occurs.
  size_t PeakAt = 0;
};

/// Computes liveness over the straight-line body (inputs live from entry,
/// outputs live to exit).
PressureStats measurePressure(const ir::Kernel &K, unsigned WordBits = 64);

/// Reorders statements with a dependence-respecting greedy list scheduler
/// that prefers statements killing more operands than they define
/// (Sethi-Ullman flavored). Semantics are preserved (same dependences);
/// returns the new pressure. Typical effect on lowered mulmod kernels is
/// a substantial peak reduction — see the scheduling ablation bench.
PressureStats scheduleForPressure(ir::Kernel &K, unsigned WordBits = 64);

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_SCHEDULE_H
