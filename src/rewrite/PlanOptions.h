//===- rewrite/PlanOptions.h - Unified generation-plan knobs ---*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One struct for every knob that changes what code the pipeline generates
/// for a kernel. These knobs existed before as scattered ablation flags
/// (the `bench/bench_ablation_*` binaries each toggled one by hand);
/// promoting them into `PlanOptions` gives the runtime's plan cache and
/// autotuner (src/runtime/) a single canonical description of a lowering
/// variant, and gives `lowerWithPlan` one entry point that drives
/// Lower -> Simplify -> Schedule consistently everywhere (tests, tools,
/// examples, benches, runtime).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_PLANOPTIONS_H
#define MOMA_REWRITE_PLANOPTIONS_H

#include "mw/MWUInt.h"
#include "rewrite/Lower.h"

#include <cstdint>
#include <string>

namespace moma {
namespace rewrite {

/// Which execution substrate a generated kernel targets. Serial is the
/// host-JIT scalar loop (one call per element); SimGpu is the same scalar
/// body wrapped in a grid-shaped (blockIdx, threadIdx) C function (the
/// paper's §5.1 CUDA thread mapping) launched over the sim:: thread-pool
/// substrate; Vector is the same body rendered as a structure-of-arrays
/// lane loop over the batch axis (codegen/VectorEmitter.h) that the host
/// compiler auto-vectorizes, compiled with per-plan extra flags
/// (-O3 -march=native). Interp skips code generation entirely and executes
/// the scalar kernel through ir::Interp — orders of magnitude slower, but
/// it cannot fail to "compile", which makes it the terminal rung of the
/// runtime's degradation ladder when the host JIT is unavailable (see
/// DESIGN.md "Failure model"). The lowering pipeline ignores this knob — it
/// selects which wrapper the runtime emits around the lowered body and
/// how the dispatcher executes it — but it lives here so one PlanOptions
/// names a complete variant for the plan cache and autotuner.
enum class ExecBackend : std::uint8_t { Serial, SimGpu, Vector, Interp };

/// Mnemonic backend name ("serial" / "simgpu" / "vector" / "interp").
const char *execBackendName(ExecBackend B);

/// Which polynomial ring an NTT-shaped plan serves: the cyclic ring
/// Z_q[x]/(x^n - 1) (the historical shape) or the negacyclic ring
/// Z_q[x]/(x^n + 1) FHE schemes use (BGV/BFV/CKKS). Like FuseDepth, the
/// knob never changes the emitted butterfly source — the ψ/ψ⁻¹ twist
/// tables are launch parameters folded into the fused pipeline's
/// edge-stage loads and stores — but it is part of the plan identity so
/// the dispatcher, tables cache, and autotuner keep the two transform
/// semantics apart.
enum class NttRing : std::uint8_t { Cyclic, Negacyclic };

/// Mnemonic ring name ("cyclic" / "negacyclic").
const char *nttRingName(NttRing R);

/// Every knob that selects a code-generation variant for one kernel.
/// Default-constructed PlanOptions reproduce the paper's default pipeline:
/// Barrett reduction, schoolbook multiply, pruning on, scheduling off.
struct PlanOptions {
  /// The machine word width ω₀ the recursion bottoms out at.
  unsigned TargetWordBits = 64;

  /// Modular-reduction strategy baked into generated mulmod/butterfly/axpy
  /// kernels. Montgomery changes the kernel signature: the Barrett `mu`
  /// parameter is replaced by `qinv` (-q^-1 mod 2^lambda) and `r2`
  /// (2^(2*lambda) mod q); outputs stay in the plain domain.
  mw::Reduction Red = mw::Reduction::Barrett;

  /// Double-word multiplication rule (§2.2, Fig. 5b).
  mw::MulAlgorithm MulAlg = mw::MulAlgorithm::Schoolbook;

  /// Run Simplify to a fixed point after lowering (the §4 zero-word
  /// pruning plus folding/DCE). Off reproduces the "no pruning" ablation.
  bool Prune = true;

  /// Run the pressure-aware list scheduler (rewrite/Schedule.h) after
  /// simplification.
  bool Schedule = false;

  /// Execution backend the runtime compiles this variant for.
  ExecBackend Backend = ExecBackend::Serial;

  /// Launch geometry for the SimGpu backend: threads per block (the
  /// paper's §5.1 block dimension, at most 1024). Meaningless on the
  /// serial backend; PlanKey canonicalization folds it to 0 there, and to
  /// the 256 default when a SimGpu plan leaves it 0.
  unsigned BlockDim = 0;

  /// NTT stage-fusion depth k: one virtual thread performs a 2^k-point
  /// sub-transform in registers, so a transform walks its log2(n) stages
  /// in ceil(log2(n)/k) backend dispatches. Only butterfly plans consume
  /// it (PlanKey canonicalization folds it to 1 everywhere else); the
  /// emitters support k in [1, MaxFuseDepth]. Depth 1 is still the fused
  /// pipeline — the edge-stage bit-reversal gather and inverse n^-1
  /// scaling folds apply at every depth.
  unsigned FuseDepth = 1;

  /// Largest stage-fusion depth the emitters unroll (2^k points held in
  /// registers per virtual thread).
  static constexpr unsigned MaxFuseDepth = 3;

  /// SIMD lane count for the Vector backend: the fixed trip count of the
  /// emitted inner lane loop (lane j of word w lives at data[w*batch+j],
  /// so multi-word carry chains stay strictly in-lane and the host
  /// compiler vectorizes the loop). Meaningless on the other backends;
  /// PlanKey canonicalization folds it to 0 there, and to the 8 default
  /// when a Vector plan leaves it 0.
  unsigned VectorWidth = 0;

  /// Simplify pass pipeline spec (rewrite/PassManager.h parsePipeline):
  /// "" or "default" is the monolith-equivalent pipeline, "extended" adds
  /// interval range analysis, CSE, and dead-port elimination, and a
  /// comma-separated catalog list picks passes by hand. Only consulted
  /// when Prune is on (PlanKey canonicalization folds it otherwise).
  std::string Passes;

  /// The pass spec with the default spelled canonically: "" and "default"
  /// name the same pipeline.
  const std::string &normalizedPasses() const {
    static const std::string Empty;
    return Passes == "default" ? Empty : Passes;
  }

  /// Polynomial ring for NTT-shaped plans. Only butterfly plans consume
  /// it (PlanKey canonicalization folds it to Cyclic everywhere else);
  /// the negacyclic twist rides the fused pipeline's edge-stage folds, so
  /// the knob costs zero extra dispatches and shares the compiled module
  /// with the cyclic plan.
  NttRing Ring = NttRing::Cyclic;

  /// Stable text form used in plan-cache keys and the autotune JSON:
  /// e.g. "w64/barrett/schoolbook/prune/noschedule". Serial plans keep
  /// the historical five-token form (so pre-backend cache keys stay
  /// readable); SimGpu plans append "/simgpu/b<dim>", Vector plans
  /// append "/vec/v<width>", Interp plans append "/interp", butterfly
  /// plans fused deeper than one stage append "/f<depth>", negacyclic
  /// butterfly plans append "/neg", and non-default pass pipelines
  /// append "/p=<spec>".
  std::string str() const;

  /// The LowerOptions slice of this plan.
  LowerOptions lowerOptions() const {
    LowerOptions O;
    O.TargetWordBits = TargetWordBits;
    O.MulAlg = MulAlg;
    return O;
  }

  bool operator==(const PlanOptions &O) const {
    return TargetWordBits == O.TargetWordBits && Red == O.Red &&
           MulAlg == O.MulAlg && Prune == O.Prune &&
           Schedule == O.Schedule && Backend == O.Backend &&
           BlockDim == O.BlockDim && FuseDepth == O.FuseDepth &&
           VectorWidth == O.VectorWidth && Ring == O.Ring &&
           normalizedPasses() == O.normalizedPasses();
  }
  bool operator!=(const PlanOptions &O) const { return !(*this == O); }
};

/// The full generation pipeline under one set of knobs:
/// lowerToWords, then (if Prune) simplifyLowered, then (if Schedule)
/// scheduleForPressure. This is the one lowering entry point the runtime,
/// tools, and tests share.
LoweredKernel lowerWithPlan(const ir::Kernel &K, const PlanOptions &Opts);

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_PLANOPTIONS_H
