//===- rewrite/Stats.cpp - Operation counting -------------------------------===//

#include "rewrite/Stats.h"

#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;

unsigned OpStats::multiplies() const {
  return count(OpKind::Mul) + count(OpKind::MulLow);
}

unsigned OpStats::addSubs() const {
  return count(OpKind::Add) + count(OpKind::Sub);
}

std::string OpStats::report() const {
  std::vector<std::pair<unsigned, OpKind>> Sorted;
  for (const auto &[Kind, N] : ByKind)
    Sorted.push_back({N, Kind});
  std::sort(Sorted.rbegin(), Sorted.rend());
  std::string Out = formatv("total %u statements\n", Total);
  for (const auto &[N, Kind] : Sorted)
    Out += formatv("  %-8s %u\n", opKindName(Kind), N);
  return Out;
}

OpStats moma::rewrite::countOps(const Kernel &K) {
  OpStats S;
  for (const Stmt &St : K.Body) {
    ++S.ByKind[St.Kind];
    ++S.Total;
  }
  return S;
}
