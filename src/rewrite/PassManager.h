//===- rewrite/PassManager.h - Composable IR pass pipeline ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass manager behind rewrite/Simplify.h. The §4 pruning rewrite used
/// to be one monolithic Rewriter; it is now a pipeline of small passes
/// (rewrite/Passes.h) driven to a fixed point by PassPipeline, so each rule
/// family is testable alone and new passes (CSE, interval range analysis,
/// dead-port elimination) compose with the originals.
///
/// The contract every pass obeys:
///
///  * run(K, AC) transforms K in place and reports what it did;
///  * when a pass rebuilds the kernel (renumbering values), it returns the
///    old-value -> new-value substitution so drivers can remap
///    LoweredKernel port words; an empty substitution means value ids were
///    preserved;
///  * a pass that finds nothing to do must leave K untouched and report
///    zero changes — fixpoint detection depends on it.
///
/// Pipelines are built by name (makePipeline) from the pass catalog; the
/// "default" pipeline reproduces the historical Simplify behaviour and the
/// "extended" pipeline adds the passes the monolith could not express.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_REWRITE_PASSMANAGER_H
#define MOMA_REWRITE_PASSMANAGER_H

#include "ir/Ir.h"
#include "rewrite/Lower.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace moma {
namespace rewrite {

/// What one pass application did to one kernel.
struct PassResult {
  /// Rewrites applied (folds, identities, reductions, CSE hits, ...).
  unsigned Changes = 0;
  /// Statements (DCE) or port words (dead-port elimination) removed.
  unsigned Removed = 0;
  /// Old-value -> new-value map when the pass rebuilt the kernel and
  /// renumbered values; empty when ids were preserved.
  std::vector<ir::ValueId> Subst;
};

/// Analyses shared between passes in one pipeline sweep. Results are
/// computed lazily and must be invalidated after any pass changes the
/// kernel. Also carries the LoweredKernel when the pipeline runs over one,
/// so port-aware passes (dead-port elimination) can see the port maps.
class AnalysisCache {
public:
  explicit AnalysisCache(LoweredKernel *Lowered = nullptr)
      : Lowered(Lowered) {}

  /// The lowered kernel this pipeline runs over, or null for a plain
  /// ir::Kernel pipeline.
  LoweredKernel *lowered() const { return Lowered; }

  /// Per-value operand/output use counts over \p K.
  const std::vector<unsigned> &useCounts(const ir::Kernel &K);

  /// Drops every cached analysis (call after a pass mutates the kernel).
  void invalidate() { UseCountsValid = false; }

private:
  LoweredKernel *Lowered;
  bool UseCountsValid = false;
  std::vector<unsigned> UseCounts;
};

/// One rewrite pass over a kernel.
class Pass {
public:
  virtual ~Pass() = default;
  virtual const char *name() const = 0;
  virtual PassResult run(ir::Kernel &K, AnalysisCache &AC) = 0;
};

/// Per-pass counters accumulated across a pipeline run.
struct PassStats {
  std::string Name;
  unsigned Runs = 0;    ///< times the pass executed
  unsigned Changes = 0; ///< total rewrites reported
  unsigned Removed = 0; ///< total statements / port words removed
  int StmtDelta = 0;    ///< net body-size change attributed to the pass
  int MulDelta = 0;     ///< net Mul+MulLow change
  int AddSubDelta = 0;  ///< net Add+Sub change
};

/// What a whole pipeline run did.
struct PipelineStats {
  std::vector<PassStats> PerPass; ///< one entry per pipeline pass, in order
  unsigned Iterations = 0;        ///< fixpoint sweeps executed
  bool Converged = true;          ///< false when MaxIters was hit

  unsigned totalChanges() const;
  unsigned totalRemoved() const;
  const PassStats *pass(const std::string &Name) const;
  /// One line per pass: "name: changes=... removed=... ops=-N", plus the
  /// iteration count. Used by `moma-gen --emit pass-stats` and the
  /// non-convergence diagnostic.
  std::string report() const;
};

/// Runs a fixed sequence of passes to a fixed point.
class PassPipeline {
public:
  PassPipeline() = default;
  PassPipeline(PassPipeline &&) = default;
  PassPipeline &operator=(PassPipeline &&) = default;

  PassPipeline &add(std::unique_ptr<Pass> P) {
    Passes.push_back(std::move(P));
    return *this;
  }
  size_t size() const { return Passes.size(); }

  /// One sweep: runs every pass once, composing substitutions into
  /// \p TotalSubst (when non-null) and accumulating \p Stats. Returns the
  /// number of changes+removals observed.
  unsigned sweep(ir::Kernel &K, AnalysisCache &AC, PipelineStats &Stats,
                 std::vector<ir::ValueId> *TotalSubst);

  /// Sweeps until no pass reports work and the body size is stable, or
  /// MaxIters sweeps have run; a non-converged run emits a diagnostic on
  /// stderr naming the kernel and the last iteration's per-pass stats.
  PipelineStats run(ir::Kernel &K, unsigned MaxIters = DefaultMaxIters);

  /// run() over a lowered kernel, remapping port words through each
  /// pass substitution so the ports stay consistent across rebuilds.
  PipelineStats runLowered(LoweredKernel &L,
                           unsigned MaxIters = DefaultMaxIters);

  /// A zeroed PipelineStats with one named entry per pipeline pass.
  PipelineStats initStats() const;

  static constexpr unsigned DefaultMaxIters = 32;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// All registered pass names, in catalog order.
std::vector<std::string> passCatalog();

/// Creates one pass by catalog name; null when the name is unknown.
std::unique_ptr<Pass> createPass(const std::string &Name);

/// Builds a pipeline from \p Spec: "default", "extended", or a comma-
/// separated list of catalog names. Returns false (with a message in
/// \p Err when non-null) on an unknown name or empty list.
bool parsePipeline(const std::string &Spec, PassPipeline &Out,
                   std::string *Err = nullptr);

/// The pipeline equivalent to the historical Simplify monolith:
/// constfold, algebraic, knownbits, copyprop, dce.
PassPipeline defaultPipeline();

/// The default pipeline plus the passes the monolith could not express:
/// constfold, algebraic, knownbits, range, cse, copyprop, dce, deadports.
PassPipeline extendedPipeline();

//===--------------------------------------------------------------------===//
// KernelRebuilder
//===--------------------------------------------------------------------===//

/// Shared statement-by-statement rebuild engine for rewrite passes. Walks
/// the old body in order; Const statements are interned (deduplicating
/// small literals); every other statement is offered to the pass hook and
/// re-emitted with recomputed KnownBits when the hook declines. The
/// rebuild is committed only when it changed something, so a pass that
/// finds nothing leaves the kernel (and its value ids) untouched.
class KernelRebuilder {
public:
  explicit KernelRebuilder(const ir::Kernel &Old);

  const ir::Kernel &oldKernel() const { return Old; }
  ir::Kernel &newKernel() { return NK; }

  /// Old-id -> new-id map (valid for already-walked statements).
  ir::ValueId mapped(ir::ValueId OldId) const { return Subst[OldId]; }

  /// Operand/output uses of \p OldId in the old kernel.
  unsigned useCount(ir::ValueId OldId) const { return UseCount[OldId]; }

  /// The constant value of a NEW id, if it is one.
  const mw::Bignum *constOf(ir::ValueId NewId) const;
  bool isZero(ir::ValueId NewId) const;
  bool isOne(ir::ValueId NewId) const;
  unsigned known(ir::ValueId NewId) const { return NK.value(NewId).KnownBits; }
  unsigned widthOf(ir::ValueId NewId) const { return NK.value(NewId).Bits; }

  /// Interns a constant (deduplicating values that fit 64 bits).
  ir::ValueId emitConst(unsigned Bits, const mw::Bignum &V);
  /// A fresh result value with KnownBits clamped into [1, Bits].
  ir::ValueId newResult(unsigned Bits, unsigned Known);
  ir::Stmt &emit(ir::OpKind Kind, std::vector<ir::ValueId> Results,
                 std::vector<ir::ValueId> Operands);

  void bind(ir::ValueId OldId, ir::ValueId NewId) { Subst[OldId] = NewId; }
  void bindConst(ir::ValueId OldId, const mw::Bignum &V) {
    bind(OldId, emitConst(Old.value(OldId).Bits, V));
  }

  /// Re-emits \p S unchanged (operands already mapped), recomputing result
  /// KnownBits with the same formulas the monolith used. Returns the
  /// emitted statement.
  ir::Stmt &emitDefault(const ir::Stmt &S, const std::vector<ir::ValueId> &Ops);

  /// Pass hook: return true when the statement was handled (operands come
  /// pre-mapped; CV holds constant operand values, null when non-const).
  /// A handling hook must bind every old result and bump Changes for each
  /// counted rewrite.
  using RewriteHook =
      std::function<bool(const ir::Stmt &S, const std::vector<ir::ValueId> &Ops,
                         const std::vector<const mw::Bignum *> &CV,
                         bool AllConst)>;
  /// Observer invoked after each statement the hook declined is re-emitted
  /// by emitDefault (CSE/range analysis use it to index fresh results).
  using EmitObserver =
      std::function<void(const ir::Stmt &OldS, const ir::Stmt &NewS)>;

  /// Walks the whole body through \p Hook, rebuilds inputs/outputs, and —
  /// when anything changed — commits the new kernel into \p K and returns
  /// the substitution. A rebuild with zero changes and an unchanged body
  /// size is discarded, leaving \p K untouched.
  PassResult rebuild(ir::Kernel &K, const RewriteHook &Hook,
                     const EmitObserver &Observer = nullptr);

  /// Rewrites counted by the driving pass (hooks increment it).
  unsigned Changes = 0;

private:
  const ir::Kernel &Old;
  ir::Kernel NK;
  std::vector<ir::ValueId> Subst;
  std::vector<unsigned> UseCount;
  // Flat constant tracking indexed by NEW value id (the rewrite hot path:
  // the old std::map lookups dominated cold-cache plan compiles).
  std::vector<mw::Bignum> ConstVals;
  std::vector<bool> HasConst;
  struct SmallConstKey {
    unsigned Bits;
    std::uint64_t Low;
    bool operator==(const SmallConstKey &K) const {
      return Bits == K.Bits && Low == K.Low;
    }
  };
  struct SmallConstKeyHash {
    size_t operator()(const SmallConstKey &K) const {
      return std::hash<std::uint64_t>()(K.Low * 0x9E3779B97F4A7C15ull ^
                                        K.Bits);
    }
  };
  std::unordered_map<SmallConstKey, ir::ValueId, SmallConstKeyHash>
      SmallConstCache;
};

/// Base for passes that rewrite via a KernelRebuilder walk: subclasses
/// implement tryRewrite for the statements they understand and inherit the
/// rebuild/commit/substitution plumbing.
class RebuildPass : public Pass {
public:
  PassResult run(ir::Kernel &K, AnalysisCache &AC) override;

protected:
  /// Per-kernel setup before the walk (clear pass-local state).
  virtual void begin(KernelRebuilder &RB) { (void)RB; }
  /// The pass's rewrite rules; return false to default-emit the statement.
  virtual bool tryRewrite(KernelRebuilder &RB, const ir::Stmt &S,
                          const std::vector<ir::ValueId> &Ops,
                          const std::vector<const mw::Bignum *> &CV,
                          bool AllConst) = 0;
  /// Called after a declined statement is re-emitted unchanged.
  virtual void observeDefault(KernelRebuilder &RB, const ir::Stmt &OldS,
                              const ir::Stmt &NewS) {
    (void)RB;
    (void)OldS;
    (void)NewS;
  }

  /// The analysis cache of the in-flight run(); lets begin()/tryRewrite
  /// reach pipeline-level context such as the LoweredKernel word bounds.
  AnalysisCache *CurAC = nullptr;
};

} // namespace rewrite
} // namespace moma

#endif // MOMA_REWRITE_PASSMANAGER_H
