//===- kernels/BlasKernels.cpp - BLAS kernel builders ------------------------===//

#include "kernels/BlasKernels.h"

#include "rewrite/Simplify.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::ir;
using namespace moma::kernels;

const char *moma::kernels::blasOpName(BlasOp Op) {
  switch (Op) {
  case BlasOp::VAdd:
    return "vadd";
  case BlasOp::VSub:
    return "vsub";
  case BlasOp::VMul:
    return "vmul";
  case BlasOp::Axpy:
    return "axpy";
  }
  moma_unreachable("unknown BLAS op");
}

Kernel moma::kernels::buildBlasElementKernel(BlasOp Op,
                                             const ScalarKernelSpec &Spec) {
  Kernel K;
  switch (Op) {
  case BlasOp::VAdd:
    K = buildAddModKernel(Spec);
    break;
  case BlasOp::VSub:
    K = buildSubModKernel(Spec);
    break;
  case BlasOp::VMul:
    K = buildMulModKernel(Spec);
    break;
  case BlasOp::Axpy:
    K = buildAxpyKernel(Spec);
    break;
  }
  bool Mont = Spec.Red == mw::Reduction::Montgomery &&
              (Op == BlasOp::VMul || Op == BlasOp::Axpy);
  K.Name = formatv("%s_%u%s", blasOpName(Op), Spec.ContainerBits,
                   Mont ? "_mont" : "");
  return K;
}

rewrite::LoweredKernel
moma::kernels::generateBlasKernel(BlasOp Op, const ScalarKernelSpec &Spec,
                                  const rewrite::PlanOptions &Plan) {
  // The plan is authoritative for the reduction strategy: it selects which
  // element kernel gets built, not just how it lowers.
  ScalarKernelSpec S = Spec;
  S.Red = Plan.Red;
  Kernel K = buildBlasElementKernel(Op, S);
  return rewrite::lowerWithPlan(K, Plan);
}

rewrite::LoweredKernel
moma::kernels::generateBlasKernel(BlasOp Op, const ScalarKernelSpec &Spec,
                                  mw::MulAlgorithm Alg,
                                  unsigned TargetWordBits) {
  rewrite::PlanOptions Plan;
  Plan.TargetWordBits = TargetWordBits;
  Plan.MulAlg = Alg;
  Plan.Red = Spec.Red;
  return generateBlasKernel(Op, Spec, Plan);
}

std::string moma::kernels::emitBlasCuda(BlasOp Op,
                                        const ScalarKernelSpec &Spec,
                                        mw::MulAlgorithm Alg) {
  rewrite::LoweredKernel L = generateBlasKernel(Op, Spec, Alg);
  codegen::CudaEmitOptions Opts;
  Opts.Banner = formatv("%s over Z_q, %u-bit elements, %u-bit modulus",
                        blasOpName(Op), Spec.ContainerBits, Spec.modBits());
  return codegen::emitCudaElementwise(L, Opts);
}
