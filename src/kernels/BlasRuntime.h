//===- kernels/BlasRuntime.h - Fixed-width BLAS runtime -------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime execution of the BLAS kernels on MWUInt elements over the
/// simulated device — the generated-code-equivalent path the benchmarks
/// time (the dlopen integration tests prove the emitted C computes
/// exactly these functions). One virtual thread per element, batch via
/// flat concatenation, matching the paper's §5.1 parallelization.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_KERNELS_BLASRUNTIME_H
#define MOMA_KERNELS_BLASRUNTIME_H

#include "field/PrimeField.h"
#include "sim/Launch.h"

#include <vector>

namespace moma {
namespace kernels {

/// Element-wise modular BLAS over W-word elements.
template <unsigned W> class BlasRuntime {
public:
  using Field = field::PrimeField<W>;
  using Element = typename Field::Element;

  explicit BlasRuntime(const Field &F) : F(F) {}

  const Field &field() const { return F; }

  void vadd(const sim::Device &Dev, const std::vector<Element> &A,
            const std::vector<Element> &B, std::vector<Element> &C) const {
    C.resize(A.size());
    Dev.parallelFor(A.size(),
                    [&](std::uint64_t I) { C[I] = F.add(A[I], B[I]); });
  }

  void vsub(const sim::Device &Dev, const std::vector<Element> &A,
            const std::vector<Element> &B, std::vector<Element> &C) const {
    C.resize(A.size());
    Dev.parallelFor(A.size(),
                    [&](std::uint64_t I) { C[I] = F.sub(A[I], B[I]); });
  }

  void vmul(const sim::Device &Dev, const std::vector<Element> &A,
            const std::vector<Element> &B, std::vector<Element> &C) const {
    C.resize(A.size());
    Dev.parallelFor(A.size(),
                    [&](std::uint64_t I) { C[I] = F.mul(A[I], B[I]); });
  }

  /// y = a*x + y (axpy, Eq. 10).
  void axpy(const sim::Device &Dev, const Element &A,
            const std::vector<Element> &X, std::vector<Element> &Y) const {
    Dev.parallelFor(X.size(), [&](std::uint64_t I) {
      Y[I] = F.add(F.mul(A, X[I]), Y[I]);
    });
  }

private:
  Field F;
};

} // namespace kernels
} // namespace moma

#endif // MOMA_KERNELS_BLASRUNTIME_H
