//===- kernels/ScalarKernels.h - Modular scalar kernel builders -*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR builders for the scalar modular kernels the paper generates: the
/// element operations behind the BLAS kernels (§5.2) and the NTT butterfly
/// (§5.3: one modular add, one modular sub, one modular mul).
///
/// Every builder takes the container width λ (a power-of-two multiple of
/// the machine word) and the modulus bit-width m <= λ-4. Inputs a, b are
/// reduced (< q); q and mu are runtime parameters, exactly like the
/// generated CUDA in the paper's Listings (q0..qk, mu0..muk arguments).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_KERNELS_SCALARKERNELS_H
#define MOMA_KERNELS_SCALARKERNELS_H

#include "ir/Ir.h"
#include "mw/MWUInt.h"

namespace moma {
namespace kernels {

/// Width configuration shared by the scalar kernel builders.
struct ScalarKernelSpec {
  /// Container bit-width λ (power-of-two multiple of the machine word).
  unsigned ContainerBits = 128;
  /// Modulus bit-width m; defaults to λ-4 (the paper's evaluation setup).
  /// Values a, b carry KnownBits = m so the non-power-of-two pruning
  /// applies automatically when m is far below λ.
  unsigned ModBits = 0;
  /// Reduction strategy for kernels containing a modular multiplication.
  /// Barrett (default) takes a `mu` parameter (Listing 4); Montgomery
  /// replaces it with `qinv` = -q^-1 mod 2^λ and `r2` = 2^(2λ) mod q and
  /// computes the plain-domain product via two REDC passes, so both
  /// variants have identical input/output semantics. Kernels without a
  /// multiplication (addmod/submod) ignore this knob.
  mw::Reduction Red = mw::Reduction::Barrett;

  unsigned modBits() const {
    return ModBits == 0 ? ContainerBits - 4 : ModBits;
  }
};

/// c = (a + b) mod q.
ir::Kernel buildAddModKernel(const ScalarKernelSpec &Spec);

/// c = (a - b) mod q.
ir::Kernel buildSubModKernel(const ScalarKernelSpec &Spec);

/// c = (a * b) mod q via Barrett (takes mu).
ir::Kernel buildMulModKernel(const ScalarKernelSpec &Spec);

/// (hi, lo) = a * b, the full non-modular product.
ir::Kernel buildMulFullKernel(const ScalarKernelSpec &Spec);

/// NTT butterfly: t = w*y mod q; x' = x + t mod q; y' = x - t mod q.
/// Under Montgomery reduction the twiddle port `w` expects the
/// Montgomery-domain form w*2^λ mod q (precomputed twiddle tables make
/// the conversion free), so a single REDC yields the plain-domain
/// product; the kernel then takes qinv but no r2, and x/y/outputs stay
/// plain-domain like the Barrett variant.
ir::Kernel buildButterflyKernel(const ScalarKernelSpec &Spec);

/// axpy element: y' = (a*x + y) mod q (BLAS Level 1, Eq. 10).
ir::Kernel buildAxpyKernel(const ScalarKernelSpec &Spec);

/// RNS decompose element: c = a mod q, where a is a wide value of
/// \p WideWords stored 64-bit words (the RNS base's elemWords(M)) and q a
/// word-sized limb prime of Spec.ModBits bits (must be set explicitly,
/// <= 62). One generalized Barrett pass at the container width λ:
/// q̂ = floor(a * gmu / 2^λ) with gmu = floor(2^λ / q), then
/// r = a - q̂·q < 3q and two conditional subtractions. Takes `gmu`
/// instead of the standard `mu` (both derive from q and the container
/// alone, so the compiled kernel serves every limb of its width — the
/// modulus value stays out of the plan key). Requires
/// 64 * WideWords <= λ.
ir::Kernel buildRnsDecomposeKernel(const ScalarKernelSpec &Spec,
                                   unsigned WideWords);

/// RNS recombine step: yo = (a*x + y) mod q — the axpy shape with q = M
/// (the full RNS modulus, Spec.ModBits = bitWidth(M)), a = the limb's
/// CRT weight W_l = (M/q_l)·((M/q_l)^{-1} mod q_l) mod M (broadcast),
/// x = the limb's word-sized residue (KnownBits capped at 62, so one
/// stored word regardless of the wide width) and y = the accumulator.
/// Running it once per limb over a zeroed accumulator computes the CRT
/// reconstruction sum Σ r_l·W_l mod M. Always Barrett (the reduction
/// knob is folded in the plan key).
ir::Kernel buildRnsRecombineStepKernel(const ScalarKernelSpec &Spec);

/// RNS rescale step: co = (x - y)*a mod q — the per-limb element of
/// modulus switching (dropping the chain's last limb q_last). Per
/// surviving limb q: a = q_last^{-1} mod q (broadcast), x = this limb's
/// residue (< q), y = the dropped limb's residue (< q_last < 2q for a
/// same-width chain, so one conditional subtraction folds it under q
/// before the modular subtract). Running it once per surviving limb
/// computes the residues of (X - (X mod q_last)) / q_last — exact
/// integer division by q_last, entirely in residue form. Spec.ModBits is
/// the limb width (must be set, <= 62); always Barrett (the reduction
/// knob is folded in the plan key).
ir::Kernel buildRnsRescaleStepKernel(const ScalarKernelSpec &Spec);

} // namespace kernels
} // namespace moma

#endif // MOMA_KERNELS_SCALARKERNELS_H
