//===- kernels/NttKernels.h - NTT kernel generation -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NTT side of the generation pipeline (§5.3): lowers the butterfly
/// through the rewrite system and emits the per-stage CUDA kernel the
/// paper benchmarks (one thread per butterfly, batch in grid.y).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_KERNELS_NTTKERNELS_H
#define MOMA_KERNELS_NTTKERNELS_H

#include "codegen/CudaEmitter.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/PlanOptions.h"

#include <string>

namespace moma {
namespace kernels {

/// Builds the butterfly (with \p Plan's reduction strategy) and runs it
/// through rewrite::lowerWithPlan.
rewrite::LoweredKernel generateButterflyKernel(const ScalarKernelSpec &Spec,
                                               const rewrite::PlanOptions &Plan);

/// Convenience overload with the historical knob set (always prunes,
/// never schedules, reduction taken from \p Spec).
rewrite::LoweredKernel
generateButterflyKernel(const ScalarKernelSpec &Spec,
                        mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook,
                        unsigned TargetWordBits = 64);

/// Emits the complete NTT stage CUDA translation unit.
std::string
emitNttCuda(const ScalarKernelSpec &Spec,
            mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook);

} // namespace kernels
} // namespace moma

#endif // MOMA_KERNELS_NTTKERNELS_H
