//===- kernels/ScalarKernels.cpp - Modular scalar kernel builders ----------===//

#include "kernels/ScalarKernels.h"

#include "ir/Builder.h"
#include "support/Error.h"

#include <algorithm>

using namespace moma;
using namespace moma::ir;
using namespace moma::kernels;

namespace {

/// Common setup: a kernel with reduced inputs a, b plus the modulus and the
/// reduction-specific auxiliary parameters (Barrett mu, or Montgomery
/// qinv/r2).
struct KernelFrame {
  Kernel K;
  ValueId A = NoValue, B = NoValue, Q = NoValue, Mu = NoValue;
  ValueId QInv = NoValue, R2 = NoValue;
  unsigned ModBits = 0;
};

/// Appends the reduction-specific parameters for a kernel that multiplies.
void addReductionInputs(KernelFrame &F, const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (Spec.Red == mw::Reduction::Barrett) {
    // mu = floor(2^(2M+3) / q) < 2^(M+4).
    F.Mu = F.K.newValue(W, "mu", M + 4);
    F.K.addInput(F.Mu, "mu");
  } else {
    // qinv = -q^-1 mod 2^W occupies the full container; r2 = 2^(2W) mod q
    // is reduced. Both derive from q alone (see runtime/Dispatcher).
    F.QInv = F.K.newValue(W, "qinv", W);
    F.K.addInput(F.QInv, "qinv");
    F.R2 = F.K.newValue(W, "r2", M);
    F.K.addInput(F.R2, "r2");
  }
}

KernelFrame makeFrame(const ScalarKernelSpec &Spec, const char *Name,
                      bool NeedsMul) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("scalar kernel: modulus bits must be <= container - 4");
  KernelFrame F;
  F.ModBits = M;
  F.K.Name = Name;
  if (NeedsMul && Spec.Red == mw::Reduction::Montgomery)
    F.K.Name += "_mont";
  // Reduced inputs are < q < 2^M; the modulus itself has exactly M bits.
  F.A = F.K.newValue(W, "a", M);
  F.K.addInput(F.A, "a");
  F.B = F.K.newValue(W, "b", M);
  F.K.addInput(F.B, "b");
  F.Q = F.K.newValue(W, "q", M);
  F.K.addInput(F.Q, "q");
  if (NeedsMul)
    addReductionInputs(F, Spec);
  return F;
}

/// One REDC pass: given the full product t = hi*2^W + lo of two values
/// below q, returns t * 2^-W mod q. Straight-line Montgomery reduction:
///   m = (t mod 2^W) * qinv mod 2^W
///   u = (t + m*q) / 2^W          (low half cancels exactly; u < 2q)
///   return u < q ? u : u - q
ValueId emitRedc(Builder &B, ValueId Hi, ValueId Lo, ValueId Q, ValueId QInv,
                 unsigned ModBits) {
  ValueId M = B.mulLow(Lo, QInv);
  HiLoResult MQ = B.mul(M, Q);
  CarryResult S0 = B.add(Lo, MQ.Lo); // sum is 0 mod 2^W; only the carry
                                     // propagates into the high half
  CarryResult S1 = B.add(Hi, MQ.Hi, S0.Carry);
  ValueId U = S1.Value; // the top-level carry is provably zero: u < 2q < 2^W
  ValueId Keep = B.lt(U, Q);
  CarryResult D = B.sub(U, Q);
  ValueId R = B.select(Keep, U, D.Value);
  // The selected value is < q in every execution (u when u < q, u - q
  // otherwise), so the result carries the modulus bound like the Barrett
  // macro-op does — this is what lets §4 pruning drop its top words.
  B.kernel().value(R).KnownBits = ModBits;
  return R;
}

/// Plain-domain Montgomery modular product: REDC(a*b) = a*b*2^-W mod q,
/// then REDC(that * r2) multiplies the stray 2^-W back out. Two REDC
/// passes instead of Barrett's three multiplies; same signature semantics.
ValueId emitMulModMontgomery(Builder &B, const KernelFrame &F, ValueId A,
                             ValueId BV) {
  HiLoResult P1 = B.mul(A, BV);
  ValueId T = emitRedc(B, P1.Hi, P1.Lo, F.Q, F.QInv, F.ModBits);
  HiLoResult P2 = B.mul(T, F.R2);
  return emitRedc(B, P2.Hi, P2.Lo, F.Q, F.QInv, F.ModBits);
}

/// Reduction-dispatching modular product used by every kernel builder.
ValueId emitMulMod(Builder &B, const ScalarKernelSpec &Spec,
                   const KernelFrame &F, ValueId A, ValueId BV) {
  if (Spec.Red == mw::Reduction::Montgomery)
    return emitMulModMontgomery(B, F, A, BV);
  return B.mulMod(A, BV, F.Q, F.Mu, F.ModBits);
}

} // namespace

Kernel moma::kernels::buildAddModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "addmod", /*NeedsMul=*/false);
  Builder B(F.K);
  ValueId C = B.addMod(F.A, F.B, F.Q);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildSubModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "submod", /*NeedsMul=*/false);
  Builder B(F.K);
  ValueId C = B.subMod(F.A, F.B, F.Q);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildMulModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "mulmod", /*NeedsMul=*/true);
  Builder B(F.K);
  ValueId C = emitMulMod(B, Spec, F, F.A, F.B);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildMulFullKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  Kernel K;
  K.Name = "mulfull";
  ValueId A = K.newValue(W, "a", Spec.modBits());
  K.addInput(A, "a");
  ValueId BV = K.newValue(W, "b", Spec.modBits());
  K.addInput(BV, "b");
  Builder B(K);
  HiLoResult R = B.mul(A, BV);
  K.addOutput(R.Hi, "hi");
  K.addOutput(R.Lo, "lo");
  return K;
}

Kernel moma::kernels::buildButterflyKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("butterfly: modulus bits must be <= container - 4");
  bool Mont = Spec.Red == mw::Reduction::Montgomery;
  KernelFrame F;
  F.ModBits = M;
  Kernel &K = F.K;
  K.Name = Mont ? "butterfly_mont" : "butterfly";
  ValueId X = K.newValue(W, "x", M);
  K.addInput(X, "x");
  ValueId Y = K.newValue(W, "y", M);
  K.addInput(Y, "y");
  ValueId Wt = K.newValue(W, "w", M); // twiddle, reduced; Montgomery-form
                                      // (w * 2^W mod q) for Montgomery
  K.addInput(Wt, "w");
  F.Q = K.newValue(W, "q", M);
  K.addInput(F.Q, "q");
  if (Mont) {
    // Unlike mulmod, the Montgomery butterfly takes its twiddle already
    // in the Montgomery domain (the twiddle table is precomputed once per
    // (q, n), so the domain conversion is free): a single REDC then lands
    // the plain-domain product directly, REDC(y * w*2^W) = y*w mod q.
    // No r2 port — the second REDC pass of the plain-domain mulmod is
    // exactly what the precomputed table removes from the hot path.
    F.QInv = K.newValue(W, "qinv", W);
    K.addInput(F.QInv, "qinv");
  } else {
    addReductionInputs(F, Spec);
  }

  Builder B(K);
  ValueId T;
  if (Mont) {
    HiLoResult P = B.mul(Y, Wt);
    T = emitRedc(B, P.Hi, P.Lo, F.Q, F.QInv, M);
  } else {
    T = emitMulMod(B, Spec, F, Y, Wt);
  }
  ValueId XOut = B.addMod(X, T, F.Q);
  ValueId YOut = B.subMod(X, T, F.Q);
  K.addOutput(XOut, "xo");
  K.addOutput(YOut, "yo");
  return std::move(F.K);
}

Kernel moma::kernels::buildRnsDecomposeKernel(const ScalarKernelSpec &Spec,
                                              unsigned WideWords) {
  unsigned W = Spec.ContainerBits;
  unsigned L = Spec.ModBits; // the limb width; modBits() would default to
                             // W-4, which is never a word-sized limb
  if (L == 0 || L > 62)
    fatalError("rnsdec: limb modulus bits must be set and <= 62");
  if (WideWords == 0 || 64 * WideWords > W)
    fatalError("rnsdec: wide words must fit the container");
  Kernel K;
  K.Name = "rnsdec";
  // a < 2^(64*WideWords): exactly the stored words of one wide batch
  // element, so the dispatch stride equals the RNS base's elemWords(M).
  ValueId A = K.newValue(W, "a", 64 * WideWords);
  K.addInput(A, "a");
  ValueId Q = K.newValue(W, "q", L);
  K.addInput(Q, "q");
  // gmu = floor(2^W / q) < 2^(W-L+1): the generalized Barrett constant
  // for single-pass reduction of any a < 2^W.
  ValueId GMu = K.newValue(W, "gmu", W - L + 1);
  K.addInput(GMu, "gmu");

  Builder B(K);
  // q̂ = floor(a·gmu / 2^W) — the full product's high half, so the
  // Barrett shift is the container width and costs nothing. Standard
  // bound: a/q - 2 < q̂ <= a/q, hence r0 = a - q̂·q in [0, 3q).
  HiLoResult P = B.mul(A, GMu);
  ValueId QHat = P.Hi;
  K.value(QHat).KnownBits =
      std::min(W, 64 * WideWords - L + 1); // a·gmu < 2^(64W' + W - L + 1)
  ValueId T = B.mulLow(QHat, Q);
  K.value(T).KnownBits = 64 * WideWords; // q̂·q <= a
  ValueId R = B.sub(A, T).Value;
  K.value(R).KnownBits = L + 2; // r0 < 3q — this is what lets pruning
                                // collapse the corrections to limb width
  for (unsigned Pass = 0; Pass < 2; ++Pass) {
    ValueId Keep = B.lt(R, Q);
    CarryResult D = B.sub(R, Q);
    R = B.select(Keep, R, D.Value);
    K.value(R).KnownBits = L + 1 - Pass; // < 2q, then < q
  }
  K.addOutput(R, "c");
  return K;
}

Kernel moma::kernels::buildRnsRecombineStepKernel(
    const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("rnsrec: modulus bits must be <= container - 4");
  Kernel K;
  K.Name = "rnsrec";
  ValueId A = K.newValue(W, "a", M); // CRT weight W_l < M (broadcast)
  K.addInput(A, "a");
  // The residue is word-sized whatever the wide width: capping KnownBits
  // at 62 keeps it one stored word and keeps the limb width out of the
  // plan key (any residue of a <= 62-bit limb is covered).
  ValueId X = K.newValue(W, "x", std::min(62u, M));
  K.addInput(X, "x");
  ValueId Y = K.newValue(W, "y", M); // accumulator < M
  K.addInput(Y, "y");
  ValueId Q = K.newValue(W, "q", M);
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(W, "mu", M + 4); // standard Barrett constant
  K.addInput(Mu, "mu");

  Builder B(K);
  ValueId AX = B.mulMod(A, X, Q, Mu, M);
  ValueId Out = B.addMod(AX, Y, Q);
  K.addOutput(Out, "yo");
  return K;
}

Kernel moma::kernels::buildRnsRescaleStepKernel(
    const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned L = Spec.ModBits; // the limb width; modBits() would default to
                             // W-4, which is never a word-sized limb
  if (L == 0 || L > 62)
    fatalError("rnsresc: limb modulus bits must be set and <= 62");
  if (L + 4 > W)
    fatalError("rnsresc: modulus bits must be <= container - 4");
  Kernel K;
  K.Name = "rnsresc";
  ValueId A = K.newValue(W, "a", L); // q_last^{-1} mod q (broadcast)
  K.addInput(A, "a");
  ValueId X = K.newValue(W, "x", L); // this limb's residue, < q
  K.addInput(X, "x");
  // The dropped limb's residue: < q_last < 2^L < 2q when every limb
  // shares one bit-width, so a single conditional subtraction folds it
  // under q (same correction the decompose kernel's tail uses).
  ValueId Y = K.newValue(W, "y", L);
  K.addInput(Y, "y");
  ValueId Q = K.newValue(W, "q", L);
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(W, "mu", L + 4); // standard Barrett constant
  K.addInput(Mu, "mu");

  Builder B(K);
  ValueId Keep = B.lt(Y, Q);
  CarryResult D = B.sub(Y, Q);
  ValueId YR = B.select(Keep, Y, D.Value);
  K.value(YR).KnownBits = L; // y mod q < q
  ValueId Diff = B.subMod(X, YR, Q);
  ValueId Out = B.mulMod(Diff, A, Q, Mu, L);
  K.addOutput(Out, "co");
  return K;
}

Kernel moma::kernels::buildAxpyKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("axpy: modulus bits must be <= container - 4");
  KernelFrame F;
  F.ModBits = M;
  Kernel &K = F.K;
  K.Name = Spec.Red == mw::Reduction::Montgomery ? "axpy_mont" : "axpy";
  ValueId A = K.newValue(W, "a", M);
  K.addInput(A, "a");
  ValueId X = K.newValue(W, "x", M);
  K.addInput(X, "x");
  ValueId Y = K.newValue(W, "y", M);
  K.addInput(Y, "y");
  F.Q = K.newValue(W, "q", M);
  K.addInput(F.Q, "q");
  addReductionInputs(F, Spec);

  Builder B(K);
  ValueId AX = emitMulMod(B, Spec, F, A, X);
  ValueId Out = B.addMod(AX, Y, F.Q);
  K.addOutput(Out, "yo");
  return std::move(F.K);
}
