//===- kernels/ScalarKernels.cpp - Modular scalar kernel builders ----------===//

#include "kernels/ScalarKernels.h"

#include "ir/Builder.h"
#include "support/Error.h"

using namespace moma;
using namespace moma::ir;
using namespace moma::kernels;

namespace {

/// Common setup: a kernel with reduced inputs a, b plus q and mu params.
struct KernelFrame {
  Kernel K;
  ValueId A = NoValue, B = NoValue, Q = NoValue, Mu = NoValue;
  unsigned ModBits = 0;
};

KernelFrame makeFrame(const ScalarKernelSpec &Spec, const char *Name,
                      bool NeedsMu) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("scalar kernel: modulus bits must be <= container - 4");
  KernelFrame F;
  F.ModBits = M;
  F.K.Name = Name;
  // Reduced inputs are < q < 2^M; the modulus itself has exactly M bits.
  F.A = F.K.newValue(W, "a", M);
  F.K.addInput(F.A, "a");
  F.B = F.K.newValue(W, "b", M);
  F.K.addInput(F.B, "b");
  F.Q = F.K.newValue(W, "q", M);
  F.K.addInput(F.Q, "q");
  if (NeedsMu) {
    // mu = floor(2^(2M+3) / q) < 2^(M+4).
    F.Mu = F.K.newValue(W, "mu", M + 4);
    F.K.addInput(F.Mu, "mu");
  }
  return F;
}

} // namespace

Kernel moma::kernels::buildAddModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "addmod", /*NeedsMu=*/false);
  Builder B(F.K);
  ValueId C = B.addMod(F.A, F.B, F.Q);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildSubModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "submod", /*NeedsMu=*/false);
  Builder B(F.K);
  ValueId C = B.subMod(F.A, F.B, F.Q);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildMulModKernel(const ScalarKernelSpec &Spec) {
  KernelFrame F = makeFrame(Spec, "mulmod", /*NeedsMu=*/true);
  Builder B(F.K);
  ValueId C = B.mulMod(F.A, F.B, F.Q, F.Mu, F.ModBits);
  F.K.addOutput(C, "c");
  return std::move(F.K);
}

Kernel moma::kernels::buildMulFullKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  Kernel K;
  K.Name = "mulfull";
  ValueId A = K.newValue(W, "a", Spec.modBits());
  K.addInput(A, "a");
  ValueId BV = K.newValue(W, "b", Spec.modBits());
  K.addInput(BV, "b");
  Builder B(K);
  HiLoResult R = B.mul(A, BV);
  K.addOutput(R.Hi, "hi");
  K.addOutput(R.Lo, "lo");
  return K;
}

Kernel moma::kernels::buildButterflyKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("butterfly: modulus bits must be <= container - 4");
  Kernel K;
  K.Name = "butterfly";
  ValueId X = K.newValue(W, "x", M);
  K.addInput(X, "x");
  ValueId Y = K.newValue(W, "y", M);
  K.addInput(Y, "y");
  ValueId Wt = K.newValue(W, "w", M); // twiddle, reduced
  K.addInput(Wt, "w");
  ValueId Q = K.newValue(W, "q", M);
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(W, "mu", M + 4);
  K.addInput(Mu, "mu");

  Builder B(K);
  ValueId T = B.mulMod(Y, Wt, Q, Mu, M);
  ValueId XOut = B.addMod(X, T, Q);
  ValueId YOut = B.subMod(X, T, Q);
  K.addOutput(XOut, "xo");
  K.addOutput(YOut, "yo");
  return K;
}

Kernel moma::kernels::buildAxpyKernel(const ScalarKernelSpec &Spec) {
  unsigned W = Spec.ContainerBits;
  unsigned M = Spec.modBits();
  if (M + 4 > W)
    fatalError("axpy: modulus bits must be <= container - 4");
  Kernel K;
  K.Name = "axpy";
  ValueId A = K.newValue(W, "a", M);
  K.addInput(A, "a");
  ValueId X = K.newValue(W, "x", M);
  K.addInput(X, "x");
  ValueId Y = K.newValue(W, "y", M);
  K.addInput(Y, "y");
  ValueId Q = K.newValue(W, "q", M);
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(W, "mu", M + 4);
  K.addInput(Mu, "mu");

  Builder B(K);
  ValueId AX = B.mulMod(A, X, Q, Mu, M);
  ValueId Out = B.addMod(AX, Y, Q);
  K.addOutput(Out, "yo");
  return K;
}
