//===- kernels/NttKernels.cpp - NTT kernel generation -------------------------===//

#include "kernels/NttKernels.h"

#include "rewrite/Simplify.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::kernels;

rewrite::LoweredKernel
moma::kernels::generateButterflyKernel(const ScalarKernelSpec &Spec,
                                       const rewrite::PlanOptions &Plan) {
  ScalarKernelSpec S = Spec;
  S.Red = Plan.Red;
  ir::Kernel K = buildButterflyKernel(S);
  K.Name = formatv("ntt_butterfly_%u%s", Spec.ContainerBits,
                   Plan.Red == mw::Reduction::Montgomery ? "_mont" : "");
  return rewrite::lowerWithPlan(K, Plan);
}

rewrite::LoweredKernel
moma::kernels::generateButterflyKernel(const ScalarKernelSpec &Spec,
                                       mw::MulAlgorithm Alg,
                                       unsigned TargetWordBits) {
  rewrite::PlanOptions Plan;
  Plan.TargetWordBits = TargetWordBits;
  Plan.MulAlg = Alg;
  Plan.Red = Spec.Red;
  return generateButterflyKernel(Spec, Plan);
}

std::string moma::kernels::emitNttCuda(const ScalarKernelSpec &Spec,
                                       mw::MulAlgorithm Alg) {
  rewrite::LoweredKernel L = generateButterflyKernel(Spec, Alg);
  codegen::CudaEmitOptions Opts;
  Opts.Banner =
      formatv("NTT butterfly, %u-bit elements, %u-bit modulus, %s multiply",
              Spec.ContainerBits, Spec.modBits(),
              Alg == mw::MulAlgorithm::Karatsuba ? "Karatsuba" : "schoolbook");
  return codegen::emitCudaNttStage(L, Opts);
}
