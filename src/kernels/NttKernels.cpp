//===- kernels/NttKernels.cpp - NTT kernel generation -------------------------===//

#include "kernels/NttKernels.h"

#include "rewrite/Simplify.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::kernels;

rewrite::LoweredKernel
moma::kernels::generateButterflyKernel(const ScalarKernelSpec &Spec,
                                       mw::MulAlgorithm Alg,
                                       unsigned TargetWordBits) {
  ir::Kernel K = buildButterflyKernel(Spec);
  K.Name = formatv("ntt_butterfly_%u", Spec.ContainerBits);
  rewrite::LowerOptions Opts;
  Opts.TargetWordBits = TargetWordBits;
  Opts.MulAlg = Alg;
  rewrite::LoweredKernel L = rewrite::lowerToWords(K, Opts);
  rewrite::simplifyLowered(L);
  return L;
}

std::string moma::kernels::emitNttCuda(const ScalarKernelSpec &Spec,
                                       mw::MulAlgorithm Alg) {
  rewrite::LoweredKernel L = generateButterflyKernel(Spec, Alg);
  codegen::CudaEmitOptions Opts;
  Opts.Banner =
      formatv("NTT butterfly, %u-bit elements, %u-bit modulus, %s multiply",
              Spec.ContainerBits, Spec.modBits(),
              Alg == mw::MulAlgorithm::Karatsuba ? "Karatsuba" : "schoolbook");
  return codegen::emitCudaNttStage(L, Opts);
}
