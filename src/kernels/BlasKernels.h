//===- kernels/BlasKernels.h - BLAS kernel builders -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's BLAS workloads (§5.2): vector addition, subtraction,
/// point-wise multiplication, and axpy over Z_q — the point-wise
/// polynomial operations of §2.3. This header provides:
///
///  * IR builders for the element kernels (fed to the rewrite system and
///    then to the C/CUDA emitters), and
///  * the full generation pipeline ("build -> lower -> simplify -> emit")
///    as one call, the equivalent of invoking SPIRAL on a BLAS spec.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_KERNELS_BLASKERNELS_H
#define MOMA_KERNELS_BLASKERNELS_H

#include "codegen/CEmitter.h"
#include "codegen/CudaEmitter.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/PlanOptions.h"

#include <string>

namespace moma {
namespace kernels {

/// The four BLAS operations of Figure 2.
enum class BlasOp { VAdd, VSub, VMul, Axpy };

const char *blasOpName(BlasOp Op);

/// Builds the element kernel for \p Op at the given widths. Ports follow
/// the emitters' conventions (inputs a, b[, q, mu] -> output c; axpy uses
/// a, x, y -> yo).
ir::Kernel buildBlasElementKernel(BlasOp Op, const ScalarKernelSpec &Spec);

/// Full pipeline under one set of plan knobs: builds the element kernel
/// (with \p Plan's reduction strategy), then lowers/simplifies/schedules
/// via rewrite::lowerWithPlan. This is the entry point the runtime's plan
/// cache compiles through.
rewrite::LoweredKernel generateBlasKernel(BlasOp Op,
                                          const ScalarKernelSpec &Spec,
                                          const rewrite::PlanOptions &Plan);

/// Convenience overload with the historical knob set (always prunes,
/// never schedules, reduction taken from \p Spec).
rewrite::LoweredKernel
generateBlasKernel(BlasOp Op, const ScalarKernelSpec &Spec,
                   mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook,
                   unsigned TargetWordBits = 64);

/// Emits the element-wise CUDA translation unit for \p Op.
std::string
emitBlasCuda(BlasOp Op, const ScalarKernelSpec &Spec,
             mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook);

} // namespace kernels
} // namespace moma

#endif // MOMA_KERNELS_BLASKERNELS_H
