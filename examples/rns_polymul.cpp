//===- examples/rns_polymul.cpp - RNS-batched negacyclic products --------------===//
//
// The workload real FHE/ZKP stacks serve (the paper's §1 motivation and
// the GRNS comparison of Figure 2): ciphertext polynomials in
// Z_M[x]/(x^n + 1) with M a product of word-sized NTT-friendly primes.
// The runtime RNS layer (runtime/RnsContext.h) fans one logical
// wide-coefficient batch out across the base's limbs through the plan
// cache:
//
//   decompose (generated CRT kernel, one dispatch per limb)
//     -> per-limb negacyclic NTT polyMul (fused stage pipeline; the
//        ψ twist rides the edge stage groups, zero extra dispatches)
//     -> recombine (generated CRT kernel, one dispatch per limb)
//
// and — because PlanKey excludes the modulus value — every limb executes
// through a single compiled module per kernel.
//
// Usage: ./build/examples/rns_polymul [--smoke] [batch]
//        (default batch 64 polynomials; --smoke shrinks everything for
//        the CI wiring check)
//
//===----------------------------------------------------------------------===//

#include "field/PrimeField.h"
#include "ntt/Negacyclic.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

int main(int argc, char **argv) {
  bool Smoke = false;
  size_t Batch = 0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      Batch = std::strtoul(argv[I], nullptr, 10);
  }
  const size_t N = Smoke ? 16 : 256;
  if (!Batch)
    Batch = Smoke ? 4 : 64;

  RnsContext Ctx;
  std::string Err;
  if (!RnsContext::create(4, Ctx, &Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  const Bignum &M = Ctx.modulus();
  unsigned WW = Ctx.wideWords();

  std::printf("RNS base: %zu limbs x %u bits, M = %u bits (%u-word wide "
              "coefficients)\n",
              Ctx.numLimbs(), Ctx.limbBits(), M.bitWidth(), WW);
  std::printf("workload: %zu negacyclic products in Z_M[x]/(x^%zu + 1)\n\n",
              Batch, N);

  Rng R(7);
  std::vector<Bignum> A, B;
  for (size_t I = 0; I < N * Batch; ++I) {
    A.push_back(Bignum::random(R, M));
    B.push_back(Bignum::random(R, M));
  }
  auto AW = packBatch(A, WW), BW = packBatch(B, WW);
  std::vector<std::uint64_t> CW(N * Batch * WW);

  KernelRegistry Reg;
  Autotuner Tuner(Reg);
  Dispatcher D(Reg, &Tuner);

  auto TimeMs = [](auto Fn) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };

  // First call pays autotuning + JIT for every limb-facing kernel; the
  // second is the steady-state serving cost.
  bool Ok = true;
  double WarmupMs = TimeMs([&] {
    Ok = D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                      rewrite::NttRing::Negacyclic);
  });
  double SteadyMs = TimeMs([&] {
    Ok = Ok && D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                            rewrite::NttRing::Negacyclic);
  });
  if (!Ok) {
    std::printf("rnsPolyMul failed: %s\n", D.error().c_str());
    return 1;
  }

  // Verify the first batch row against the independent library path
  // (ntt::NegacyclicPlan per limb + host CRT).
  auto C = unpackBatch(CW, WW);
  bool Correct = true;
  {
    std::vector<std::vector<std::uint64_t>> LimbC(Ctx.numLimbs());
    for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
      field::PrimeField<1> F(Ctx.limb(L));
      ntt::NegacyclicPlan<1> Plan(F, N);
      std::vector<field::PrimeField<1>::Element> EA, EB;
      for (size_t I = 0; I < N; ++I) {
        EA.push_back(F.fromBignum(A[I] % Ctx.limb(L)));
        EB.push_back(F.fromBignum(B[I] % Ctx.limb(L)));
      }
      auto EC = ntt::polyMulNegacyclic(Plan, EA, EB);
      for (const auto &E : EC)
        LimbC[L].push_back(E.toBignum().low64());
    }
    for (size_t I = 0; I < N; ++I) {
      std::vector<std::uint64_t> Res;
      for (size_t L = 0; L < Ctx.numLimbs(); ++L)
        Res.push_back(LimbC[L][I]);
      Correct = Correct && C[I] == Ctx.decode(Res.data(), 1);
    }
  }

  const auto &S = D.dispatchStats();
  std::printf("steady-state batch:    %8.2f ms  (%.0f ns per wide "
              "coefficient)\n",
              SteadyMs, SteadyMs * 1e6 / double(N * Batch));
  std::printf("  one-time tune + JIT: %8.2f ms (first call)\n", WarmupMs);
  std::printf("  plans compiled:      %u (nearly all autotuner sweep "
              "candidates; the serving set\n"
              "                       is one module per kernel shape — "
              "PlanKey excludes the modulus\n"
              "                       value, so all %zu limbs share it; "
              "see bench_rns for the exact count)\n",
              Reg.stats().Builds, Ctx.numLimbs());
  std::printf("  dispatches so far:   %llu stage groups + %llu batch "
              "kernels, %llu transforms\n",
              static_cast<unsigned long long>(S.StageGroups),
              static_cast<unsigned long long>(S.Batches),
              static_cast<unsigned long long>(S.Transforms));
  std::printf("results: %s\n",
              Correct ? "bit-exact vs the library ψ-twist + CRT reference"
                      : "MISMATCH");
  std::printf("\nThe negacyclic ring costs zero extra dispatches: the ψ "
              "twist rides the first\nforward stage group's loads and "
              "ψ^{-i}·n^{-1} the last inverse group's stores\n(see "
              "DESIGN.md \"RNS layer & negacyclic ring\").\n");
  return Correct ? 0 : 1;
}
