//===- examples/fhe_vector_ops.cpp - FHE-style residue arithmetic --------------===//
//
// The paper's FHE motivation (§1): instead of decomposing ciphertext
// coefficients into many small RNS residues, MoMA makes wide residues
// affordable — "transitioning from 64-bit to 128-bit residues ... creates
// opportunities to reduce the frequency of costly operations".
//
// This example compares two ways to run point-wise ciphertext
// multiplication with a ~116-bit modulus (the paper's FHE reference uses
// 116-bit [52]):
//   a) MoMA: one 128-bit (2-word) residue channel, Barrett reduction;
//   b) RNS:  31-bit prime channels with CRT-based reduction mod q.
//
// Usage: ./build/examples/fhe_vector_ops [num-elements]   (default 4096)
//
//===----------------------------------------------------------------------===//

#include "baselines/Rns.h"
#include "field/PrimeField.h"
#include "kernels/BlasRuntime.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace moma;
using mw::Bignum;

int main(int argc, char **argv) {
  size_t N = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;

  field::PrimeField<2> F(field::nttPrime(116, 16));
  kernels::BlasRuntime<2> Blas(F);
  baselines::RnsContext Rns = baselines::RnsContext::forModulusBits(116);
  sim::Device Dev;

  std::printf("FHE-style point-wise ciphertext multiply, %zu elements\n",
              N);
  std::printf("modulus q: %u bits\n", F.modulusBig().bitWidth());
  std::printf("MoMA representation: 2 x 64-bit words per element\n");
  std::printf("RNS representation:  %zu x 31-bit channels per element\n\n",
              Rns.numChannels());

  Rng R(13);
  std::vector<field::PrimeField<2>::Element> A(N), B(N), C;
  std::vector<std::uint64_t> ARns, BRns, CRns;
  std::vector<Bignum> ABig(N), BBig(N);
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, F.modulusBig());
    BBig[I] = Bignum::random(R, F.modulusBig());
    A[I] = F.fromBignum(ABig[I]);
    B[I] = F.fromBignum(BBig[I]);
    auto RA = Rns.encode(ABig[I]), RB = Rns.encode(BBig[I]);
    ARns.insert(ARns.end(), RA.begin(), RA.end());
    BRns.insert(BRns.end(), RB.begin(), RB.end());
  }

  auto TimeMs = [](auto Fn) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };

  double MomaMs = TimeMs([&] { Blas.vmul(Dev, A, B, C); });
  double RnsMs =
      TimeMs([&] { Rns.vmulModQFlat(Dev, ARns, BRns, CRns, F.modulusBig()); });

  // Verify both against the oracle.
  bool Ok = true;
  for (size_t I = 0; I < N; ++I) {
    Bignum Expect = ABig[I].mulMod(BBig[I], F.modulusBig());
    Ok &= C[I].toBignum() == Expect;
    std::vector<std::uint64_t> Ci(CRns.begin() + I * Rns.numChannels(),
                                  CRns.begin() + (I + 1) * Rns.numChannels());
    Ok &= Rns.decode(Ci) == Expect;
  }

  std::printf("MoMA 128-bit residues: %8.2f ms  (%.0f ns/element)\n", MomaMs,
              MomaMs * 1e6 / double(N));
  std::printf("RNS small residues:    %8.2f ms  (%.0f ns/element)\n", RnsMs,
              RnsMs * 1e6 / double(N));
  std::printf("MoMA advantage:        %8.1fx\n", RnsMs / MomaMs);
  std::printf("results: %s\n", Ok ? "both correct" : "MISMATCH");
  std::printf("\nThe RNS channels are cheap individually, but reducing mod "
              "an\narbitrary q forces CRT reconstruction per element — "
              "exactly the\nmodulus raising/reduction overhead MoMA "
              "sidesteps (paper 1).\n");
  return Ok ? 0 : 1;
}
