//===- examples/fhe_vector_ops.cpp - FHE-style residue arithmetic --------------===//
//
// The paper's FHE motivation (§1): instead of decomposing ciphertext
// coefficients into many small RNS residues, MoMA makes wide residues
// affordable — "transitioning from 64-bit to 128-bit residues ... creates
// opportunities to reduce the frequency of costly operations".
//
// This example compares three ways to run point-wise ciphertext
// multiplication with a ~116-bit modulus (the paper's FHE reference uses
// 116-bit [52]):
//   a) MoMA library: one 128-bit (2-word) residue channel, Barrett
//      reduction through the fixed-width MWUInt runtime;
//   b) MoMA runtime: the same work batched through the src/runtime/ plan
//      cache — JIT-compiled generated kernels, variant picked by the
//      autotuner on the first request;
//   c) RNS: 31-bit prime channels with CRT-based reduction mod q.
//
// Usage: ./build/examples/fhe_vector_ops [num-elements]   (default 4096)
//
//===----------------------------------------------------------------------===//

#include "baselines/Rns.h"
#include "field/PrimeField.h"
#include "kernels/BlasRuntime.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace moma;
using mw::Bignum;

int main(int argc, char **argv) {
  size_t N = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;

  field::PrimeField<2> F(field::nttPrime(116, 16));
  const Bignum &Q = F.modulusBig();
  kernels::BlasRuntime<2> Blas(F);
  baselines::RnsContext Rns = baselines::RnsContext::forModulusBits(116);
  sim::Device Dev;

  runtime::KernelRegistry Reg;
  runtime::Autotuner Tuner(Reg);
  runtime::Dispatcher Disp(Reg, &Tuner);
  unsigned K = runtime::Dispatcher::elemWords(Q);

  std::printf("FHE-style point-wise ciphertext multiply, %zu elements\n",
              N);
  std::printf("modulus q: %u bits\n", Q.bitWidth());
  std::printf("MoMA representation: %u x 64-bit words per element\n", K);
  std::printf("RNS representation:  %zu x 31-bit channels per element\n\n",
              Rns.numChannels());

  Rng R(13);
  std::vector<field::PrimeField<2>::Element> A(N), B(N), C;
  std::vector<std::uint64_t> ARns, BRns, CRns;
  std::vector<Bignum> ABig(N), BBig(N);
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, Q);
    BBig[I] = Bignum::random(R, Q);
    A[I] = F.fromBignum(ABig[I]);
    B[I] = F.fromBignum(BBig[I]);
    auto RA = Rns.encode(ABig[I]), RB = Rns.encode(BBig[I]);
    ARns.insert(ARns.end(), RA.begin(), RA.end());
    BRns.insert(BRns.end(), RB.begin(), RB.end());
  }
  std::vector<std::uint64_t> AW = runtime::packBatch(ABig, K),
                             BW = runtime::packBatch(BBig, K),
                             CW(N * K);

  auto TimeMs = [](auto Fn) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };

  double MomaMs = TimeMs([&] { Blas.vmul(Dev, A, B, C); });
  // First runtime request autotunes and JIT-compiles; time it separately
  // so the steady-state batch cost is visible (the server-side number).
  bool JitOk = true;
  double TuneMs = TimeMs(
      [&] { JitOk = Disp.vmul(Q, AW.data(), BW.data(), CW.data(), 1); });
  double JitMs = TimeMs([&] {
    JitOk = JitOk && Disp.vmul(Q, AW.data(), BW.data(), CW.data(), N);
  });
  if (!JitOk) {
    std::printf("runtime dispatch failed: %s\n", Disp.error().c_str());
    return 1;
  }
  double RnsMs =
      TimeMs([&] { Rns.vmulModQFlat(Dev, ARns, BRns, CRns, Q); });

  // Verify all three against the oracle.
  bool Ok = true;
  std::vector<Bignum> CJit = runtime::unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I) {
    Bignum Expect = ABig[I].mulMod(BBig[I], Q);
    Ok &= C[I].toBignum() == Expect;
    Ok &= CJit[I] == Expect;
    std::vector<std::uint64_t> Ci(CRns.begin() + I * Rns.numChannels(),
                                  CRns.begin() + (I + 1) * Rns.numChannels());
    Ok &= Rns.decode(Ci) == Expect;
  }

  std::printf("MoMA library (MWUInt):  %8.2f ms  (%.0f ns/element)\n",
              MomaMs, MomaMs * 1e6 / double(N));
  std::printf("MoMA runtime (JIT):     %8.2f ms  (%.0f ns/element), "
              "+%.0f ms one-time tune/compile\n",
              JitMs, JitMs * 1e6 / double(N), TuneMs);
  std::printf("  autotuned variant:    %s\n",
              Disp.lastPlanOptions().str().c_str());
  std::printf("RNS small residues:     %8.2f ms  (%.0f ns/element)\n", RnsMs,
              RnsMs * 1e6 / double(N));
  std::printf("MoMA advantage vs RNS:  %8.1fx\n",
              RnsMs / std::min(MomaMs, JitMs));
  std::printf("results: %s\n", Ok ? "all three correct" : "MISMATCH");
  std::printf("\nThe RNS channels are cheap individually, but reducing mod "
              "an\narbitrary q forces CRT reconstruction per element — "
              "exactly the\nmodulus raising/reduction overhead MoMA "
              "sidesteps (paper 1).\nThe runtime path amortizes its "
              "one-time JIT cost across batches\n(see "
              "bench/bench_runtime_batch.cpp).\n");
  return Ok ? 0 : 1;
}
