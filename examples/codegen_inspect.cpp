//===- examples/codegen_inspect.cpp - watch the rewrite system work ------------===//
//
// Usage: ./build/examples/codegen_inspect [container-bits] [modulus-bits]
// (defaults: 128 124; try "512 377" to see the non-power-of-two pruning)
//
// Dumps the full pipeline for the NTT butterfly, the paper's central
// kernel: abstract IR, each recursive lowering round (Table 1 rules),
// simplification statistics, and the final C and CUDA translation units.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/CudaEmitter.h"
#include "ir/Printer.h"
#include "jit/HostJit.h"
#include "kernels/NttKernels.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <cstdio>
#include <cstdlib>

using namespace moma;

int main(int argc, char **argv) {
  unsigned Container = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  unsigned ModBits = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  kernels::ScalarKernelSpec Spec{Container, ModBits};

  std::printf("== building the %u-bit NTT butterfly (modulus %u bits) ==\n\n",
              Container, Spec.modBits());
  ir::Kernel K = kernels::buildButterflyKernel(Spec);
  std::printf("%s\n", ir::printKernel(K).c_str());

  std::printf("== recursive lowering (rules 19-29) ==\n");
  rewrite::LowerOptions Opts;
  ir::Kernel Cur = K;
  while (Cur.maxBits() > Opts.TargetWordBits) {
    unsigned From = Cur.maxBits();
    Cur = rewrite::lowerOneLevel(Cur, Opts);
    std::printf("  %4u -> %4u bits: %zu statements\n", From, Cur.maxBits(),
                Cur.size());
  }

  rewrite::LoweredKernel L = rewrite::lowerToWords(K, Opts);
  std::printf("\n== simplification (constant folding, zero-word pruning, "
              "DCE) ==\n");
  rewrite::OpStats Before = rewrite::countOps(L.K);
  rewrite::SimplifyStats SS = rewrite::simplifyLowered(L);
  rewrite::OpStats After = rewrite::countOps(L.K);
  std::printf("  %u -> %u statements (folded %u, identities %u, "
              "strength-reduced %u, dead %u)\n",
              Before.Total, After.Total, SS.FoldedConst, SS.Identities,
              SS.StrengthReduced, SS.DeadRemoved);
  std::printf("\n  final op mix:\n%s\n", After.report().c_str());

  std::printf("== port layout (stored words, msb first) ==\n");
  for (const auto &P : L.Inputs)
    std::printf("  in  %-3s %u container words, %u stored\n", P.Name.c_str(),
                static_cast<unsigned>(P.Words.size()), P.storedWords());
  for (const auto &P : L.Outputs)
    std::printf("  out %-3s %u container words, %u stored\n", P.Name.c_str(),
                static_cast<unsigned>(P.Words.size()), P.storedWords());

  std::printf("\n== emitted C (compile-and-dlopen tested in the suite) ==\n");
  codegen::EmittedKernel EK = codegen::emitC(L);
  std::printf("%s\n", EK.Source.c_str());

  // Inspection keeps going without a working host compiler — the CUDA
  // dump below must still print — but the exit status reports the miss.
  std::printf("== host JIT (src/jit/HostJit.h) ==\n");
  int ExitCode = 0;
  jit::HostJit Jit;
  std::shared_ptr<jit::JitModule> M = Jit.load(EK.Source);
  void *Sym = M ? M->symbol(EK.Symbol) : nullptr;
  if (!M) {
    std::fprintf(stderr, "host JIT failed:\n%s\n", Jit.error().c_str());
    ExitCode = 1;
  } else if (!Sym) {
    std::fprintf(stderr, "host JIT loaded %s but symbol '%s' is missing\n",
                 M->soPath().c_str(), EK.Symbol.c_str());
    ExitCode = 1;
  } else {
    std::printf("  compiler   %s\n", Jit.compiler().c_str());
    std::printf("  shared obj %s%s\n", M->soPath().c_str(),
                M->fromDiskCache() ? " (reused from cache)"
                                   : " (fresh compile)");
    std::printf("  symbol     %s at %p\n\n", EK.Symbol.c_str(), Sym);
  }

  std::printf("== emitted CUDA stage kernel ==\n");
  std::printf("%s\n", kernels::emitNttCuda(Spec).c_str());
  return ExitCode;
}
