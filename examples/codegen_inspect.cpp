//===- examples/codegen_inspect.cpp - watch the rewrite system work ------------===//
//
// Usage: ./build/examples/codegen_inspect [container-bits] [modulus-bits]
// (defaults: 128 124; try "512 377" to see the non-power-of-two pruning)
//
// Dumps the full pipeline for the NTT butterfly, the paper's central
// kernel: abstract IR, each recursive lowering round (Table 1 rules),
// simplification statistics, and the final C and CUDA translation units.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/CudaEmitter.h"
#include "ir/Printer.h"
#include "kernels/NttKernels.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <cstdio>
#include <cstdlib>

using namespace moma;

int main(int argc, char **argv) {
  unsigned Container = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  unsigned ModBits = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  kernels::ScalarKernelSpec Spec{Container, ModBits};

  std::printf("== building the %u-bit NTT butterfly (modulus %u bits) ==\n\n",
              Container, Spec.modBits());
  ir::Kernel K = kernels::buildButterflyKernel(Spec);
  std::printf("%s\n", ir::printKernel(K).c_str());

  std::printf("== recursive lowering (rules 19-29) ==\n");
  rewrite::LowerOptions Opts;
  ir::Kernel Cur = K;
  while (Cur.maxBits() > Opts.TargetWordBits) {
    unsigned From = Cur.maxBits();
    Cur = rewrite::lowerOneLevel(Cur, Opts);
    std::printf("  %4u -> %4u bits: %zu statements\n", From, Cur.maxBits(),
                Cur.size());
  }

  rewrite::LoweredKernel L = rewrite::lowerToWords(K, Opts);
  std::printf("\n== simplification (constant folding, zero-word pruning, "
              "DCE) ==\n");
  rewrite::OpStats Before = rewrite::countOps(L.K);
  rewrite::SimplifyStats SS = rewrite::simplifyLowered(L);
  rewrite::OpStats After = rewrite::countOps(L.K);
  std::printf("  %u -> %u statements (folded %u, identities %u, "
              "strength-reduced %u, dead %u)\n",
              Before.Total, After.Total, SS.FoldedConst, SS.Identities,
              SS.StrengthReduced, SS.DeadRemoved);
  std::printf("\n  final op mix:\n%s\n", After.report().c_str());

  std::printf("== port layout (stored words, msb first) ==\n");
  for (const auto &P : L.Inputs)
    std::printf("  in  %-3s %u container words, %u stored\n", P.Name.c_str(),
                static_cast<unsigned>(P.Words.size()), P.storedWords());
  for (const auto &P : L.Outputs)
    std::printf("  out %-3s %u container words, %u stored\n", P.Name.c_str(),
                static_cast<unsigned>(P.Words.size()), P.storedWords());

  std::printf("\n== emitted C (compile-and-dlopen tested in the suite) ==\n");
  codegen::EmittedKernel EK = codegen::emitC(L);
  std::printf("%s\n", EK.Source.c_str());

  std::printf("== emitted CUDA stage kernel ==\n");
  std::printf("%s\n", kernels::emitNttCuda(Spec).c_str());
  return 0;
}
