//===- examples/zkp_polymul.cpp - ZKP-style polynomial multiplication ----------===//
//
// The workload the paper's introduction motivates for ZKPs: polynomial
// products over a ~380-bit field (the BLS12-381 class). Coefficients use
// exact 6-word containers — the non-power-of-two path of §4 — and the
// product runs through the NTT engine (Eq. 12), validated against the
// schoolbook Eq. 11 on a sample.
//
// The same product then runs a second time through the batched runtime
// (src/runtime/): autotuned JIT-compiled butterfly/mulmod kernels behind
// the plan cache, end to end on flat word arrays. Both paths must agree
// bit for bit.
//
// Usage: ./build/examples/zkp_polymul [log2-degree]   (default 10)
//
//===----------------------------------------------------------------------===//

#include "field/PrimeField.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace moma;
using mw::Bignum;

int main(int argc, char **argv) {
  unsigned LogDeg = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  size_t Degree = size_t(1) << LogDeg;
  size_t N = 2 * Degree; // room for the full product

  // A 380-bit NTT-friendly prime in a 6-word container (BLS12-381's
  // scalar field is 255-bit; its base field 381-bit — we pick the width
  // class the paper benchmarks as "384-bit").
  field::PrimeField<6> F(field::nttPrime(380, LogDeg + 2));
  std::printf("ZKP-style polynomial product over Z_q, q %u bits "
              "(6 x 64-bit words)\n",
              F.modulusBig().bitWidth());
  std::printf("degree %zu polynomials, %zu-point NTT\n\n", Degree - 1, N);

  Rng R(7);
  std::vector<field::PrimeField<6>::Element> A, B;
  std::vector<Bignum> ABig, BBig;
  for (size_t I = 0; I < Degree; ++I) {
    ABig.push_back(Bignum::random(R, F.modulusBig()));
    BBig.push_back(Bignum::random(R, F.modulusBig()));
    A.push_back(F.fromBignum(ABig.back()));
    B.push_back(F.fromBignum(BBig.back()));
  }

  auto Start = std::chrono::steady_clock::now();
  ntt::NttPlan<6> Plan(F, N);
  auto Planned = std::chrono::steady_clock::now();
  auto C = ntt::polyMulNtt<6>(Plan, A, B);
  auto Done = std::chrono::steady_clock::now();

  auto Ms = [](auto D) {
    return std::chrono::duration<double, std::milli>(D).count();
  };
  std::printf("plan construction: %.2f ms\n", Ms(Planned - Start));
  std::printf("product (2 forward + pointwise + inverse NTT): %.2f ms\n",
              Ms(Done - Planned));

  // Validate a slice of coefficients against schoolbook Eq. 11.
  size_t CheckTerms = std::min<size_t>(Degree, 64);
  std::vector<Bignum> ARef(ABig.begin(), ABig.begin() + CheckTerms);
  std::vector<Bignum> BRef(BBig.begin(), BBig.begin() + CheckTerms);
  auto Ref = ntt::referencePolyMul(ARef, BRef, F.modulusBig());
  bool Ok = true;
  for (size_t I = 0; I < CheckTerms; ++I)
    Ok &= C[I].toBignum() == Ref[I]; // low coefficients are unaffected by
                                     // the truncated inputs
  std::printf("\nlow-coefficient check vs schoolbook: %s\n",
              Ok ? "ok" : "MISMATCH");
  std::printf("c[0]      = %s\n", C[0].toBignum().toHex().c_str());
  std::printf("c[%zu] = %s\n", N - 2,
              C[N - 2].toBignum().toHex().c_str());

  // The same product through the batched JIT runtime: autotune + compile
  // on the first request, then generated-kernel dispatch end to end.
  runtime::KernelRegistry Reg;
  runtime::Autotuner Tuner(Reg);
  runtime::Dispatcher Disp(Reg, &Tuner);
  std::vector<Bignum> CRt;
  auto RtStart = std::chrono::steady_clock::now();
  if (!Disp.polyMul(F.modulusBig(), ABig, BBig, CRt, N)) {
    std::printf("runtime polyMul failed: %s\n", Disp.error().c_str());
    return 1;
  }
  auto RtWarm = std::chrono::steady_clock::now();
  if (!Disp.polyMul(F.modulusBig(), ABig, BBig, CRt, N)) {
    std::printf("runtime polyMul failed: %s\n", Disp.error().c_str());
    return 1;
  }
  auto RtDone = std::chrono::steady_clock::now();
  bool RtOk = true;
  for (size_t I = 0; I < N; ++I)
    RtOk &= CRt[I] == C[I].toBignum();
  Ok &= RtOk;
  std::printf("\nruntime (JIT plan cache) product: %.2f ms warm "
              "(%.2f ms first request incl. autotune+compile)\n",
              Ms(RtDone - RtWarm), Ms(RtWarm - RtStart));
  // The transform-shaped decision polyMul's NTTs actually ran with
  // (served from the tuner's cache — the same key the dispatcher used).
  if (const runtime::TuneDecision *D =
          Tuner.chooseNtt(F.modulusBig(), {}, N, 1))
    std::printf("  ntt butterfly variant: %s, fuse depth %u "
                "(%.0f ns/element tuned)\n",
                D->Opts.str().c_str(), D->Opts.FuseDepth, D->NsPerElem);
  std::printf("  engine vs runtime agreement: %s\n",
              RtOk ? "bit-for-bit" : "MISMATCH");
  return Ok ? 0 : 1;
}
