//===- examples/quickstart.cpp - five-minute tour of the library ---------------===//
//
// Build:  cmake --build build && ./build/examples/quickstart
//
// Shows the core objects a user touches: multi-word integers (MWUInt),
// Barrett-reduced prime fields, the NTT engine, and one trip through the
// rewrite system (the paper's contribution) from a 256-bit kernel to
// machine-word C code.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "field/PrimeField.h"
#include "kernels/ScalarKernels.h"
#include "ntt/Ntt.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"
#include "support/Rng.h"

#include <cstdio>

using namespace moma;
using mw::Bignum;

int main() {
  std::printf("== MoMA quickstart ==\n\n");

  // 1. A 256-bit prime field with the paper's evaluation shape: a 252-bit
  //    NTT-friendly prime (four free top bits for Barrett's mu).
  auto F = field::PrimeField<4>::evaluationField(/*TwoAdicity=*/16);
  std::printf("modulus q (%u bits) = %s\n", F.modulusBig().bitWidth(),
              F.modulusBig().toHex().c_str());

  // 2. Multi-word modular arithmetic: every operation below runs on
  //    four 64-bit machine words, no arbitrary-precision types involved.
  Rng R(42);
  auto A = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto B = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Product = F.mul(A, B);
  std::printf("\na * b mod q = %s\n", Product.toBignum().toHex().c_str());
  std::printf("check vs arbitrary-precision oracle: %s\n",
              Product.toBignum() ==
                      A.toBignum().mulMod(B.toBignum(), F.modulusBig())
                  ? "ok"
                  : "MISMATCH");

  // 3. A 1024-point NTT round trip (the paper's core kernel).
  ntt::NttPlan<4> Plan(F, 1024);
  std::vector<decltype(A)> X(1024);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Orig = X;
  Plan.forward(X.data());
  Plan.inverse(X.data());
  std::printf("\n1024-point NTT round trip (%llu butterflies): %s\n",
              static_cast<unsigned long long>(Plan.butterflies()),
              X == Orig ? "ok" : "MISMATCH");

  // 4. The rewrite system: lower a 256-bit modular multiplication to
  //    64-bit words (two recursion rounds, Table 1 rules) and emit C.
  kernels::ScalarKernelSpec Spec{256, 0};
  ir::Kernel K = kernels::buildMulModKernel(Spec);
  rewrite::LoweredKernel L = rewrite::lowerToWords(K, {});
  rewrite::simplifyLowered(L);
  rewrite::OpStats Stats = rewrite::countOps(L.K);
  std::printf("\n256-bit mulmod lowered in %u rounds to %u word "
              "statements\n(%u word multiplies, %u add/sub):\n",
              L.Rounds, Stats.Total, Stats.multiplies(), Stats.addSubs());
  codegen::EmittedKernel EK = codegen::emitC(L);
  std::printf("emitted %zu bytes of C; first lines:\n", EK.Source.size());
  size_t Shown = 0, Pos = 0;
  while (Shown < 8 && Pos < EK.Source.size()) {
    size_t Eol = EK.Source.find('\n', Pos);
    std::printf("  | %s\n", EK.Source.substr(Pos, Eol - Pos).c_str());
    Pos = Eol + 1;
    ++Shown;
  }
  std::printf("\nSee examples/codegen_inspect for the full pipeline dump.\n");
  return 0;
}
