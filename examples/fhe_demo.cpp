//===- examples/fhe_demo.cpp - a toy BGV-style circuit, end to end -------------===//
//
// The FHE ciphertext layer (src/fhe/) driven through a small circuit:
// encrypt two messages, homomorphically multiply, relinearize back to
// degree 1, add a third encryption, rescale one rung down the modulus
// ladder, decrypt — with the dispatch counters printed at each step so
// the lazy-NTT economics (the tentpole of the residue-form RnsTensor
// API) are visible: a ciphertext multiply pays forward transforms only
// for polys not already NTT-resident, and inverse transforms are
// deferred until decryption demands coefficients.
//
// This is the paper's multi-word modular arithmetic serving its real
// client workload: every ciphertext coefficient lives in Z_M with M a
// product of word-sized NTT-friendly primes, and every homomorphic op
// is a composition of generated per-limb kernels (CRT edges, NTT stage
// groups, the rnsresc rescale step) through the Dispatcher plan cache.
//
// The scheme is a TOY — honest ring arithmetic, tiny error, no security
// claims (see fhe/Reference.h).
//
// Usage: ./build/examples/fhe_demo [--smoke]
//
//===----------------------------------------------------------------------===//

#include "fhe/Fhe.h"
#include "support/Rng.h"

#include <cstdio>
#include <cstring>

using namespace moma;
using namespace moma::fhe;
using namespace moma::runtime;

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;

  FheOptions O;
  O.NPoints = Smoke ? 32 : 256;
  O.NumLimbs = 4;
  FheContext FC;
  std::string Err;
  if (!FheContext::create(O, FC, &Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  std::printf("chain: %u limbs x %u bits (M = %u bits), ring "
              "Z_M[x]/(x^%zu + 1), t = %llu\n\n",
              unsigned(FC.rns().numLimbs()), FC.rns().limbBits(),
              FC.rns().modulus().bitWidth(), FC.nPoints(),
              static_cast<unsigned long long>(FC.plainModulus().low64()));

  KernelRegistry Reg;
  Dispatcher D(Reg);
  Rng R(42);
  SecretKey SK = keyGen(FC, R);
  RelinKey RK;
  if (!relinKeyGen(FC, D, SK, R, RK)) {
    std::fprintf(stderr, "relinKeyGen: %s\n", D.error().c_str());
    return 1;
  }

  // Three small messages: the circuit computes m1*m2 + m3.
  std::uint64_t T = FC.plainModulus().low64();
  std::vector<std::uint64_t> M1(FC.nPoints()), M2(FC.nPoints()),
      M3(FC.nPoints());
  for (size_t I = 0; I < FC.nPoints(); ++I) {
    M1[I] = R.below(T);
    M2[I] = R.below(T);
    M3[I] = R.below(T);
  }

  Ciphertext C1, C2, C3;
  bool Ok = encrypt(FC, D, SK, M1, R, C1) &&
            encrypt(FC, D, SK, M2, R, C2) &&
            encrypt(FC, D, SK, M3, R, C3);

  auto Step = [&](const char *What, std::uint64_t Before) {
    std::uint64_t Now = D.dispatchStats().Transforms;
    std::printf("  %-28s %3llu transforms\n", What,
                static_cast<unsigned long long>(Now - Before));
    return Now;
  };

  std::printf("circuit m1*m2 + m3, transform cost per step:\n");
  std::uint64_t Mark = D.dispatchStats().Transforms;
  Ok = Ok && ciphertextMul(D, C1, C2, C1); // 4L: all operand polys fresh
  Mark = Step("multiply (fresh operands)", Mark);
  Ok = Ok && relinearize(D, C1, RK);       // L digits forward, key resident
  Mark = Step("relinearize", Mark);
  Ok = Ok && ciphertextAdd(D, C1, C3, C1); // 2L: C3 harmonizes to NTT form
  Mark = Step("add (harmonizes lazily)", Mark);

  // Decrypt pays every deferred inverse transform at once.
  std::vector<std::uint64_t> Dec;
  Ok = Ok && decrypt(FC, D, SK, C1, Dec);
  Mark = Step("decrypt", Mark);
  if (!Ok) {
    std::fprintf(stderr, "circuit failed: %s\n", D.error().c_str());
    return 1;
  }

  // Check against the plaintext circuit: negacyclic product of m1, m2
  // plus m3, all mod t.
  std::vector<std::uint64_t> Want(FC.nPoints(), 0);
  for (size_t I = 0; I < FC.nPoints(); ++I)
    for (size_t J = 0; J < FC.nPoints(); ++J) {
      size_t K = I + J;
      std::uint64_t P = M1[I] * M2[J] % T;
      if (K >= FC.nPoints()) { // x^n = -1 wraps negated
        K -= FC.nPoints();
        P = (T - P) % T;
      }
      Want[K] = (Want[K] + P) % T;
    }
  for (size_t I = 0; I < FC.nPoints(); ++I)
    Want[I] = (Want[I] + M3[I]) % T;
  bool Correct = Dec == Want;

  // One rung down the level ladder: the rescale rebinds every poly to
  // the cached subChain view one limb shorter (ring arithmetic stays
  // bit-exact vs the Bignum oracle; the toy scheme makes no decryption
  // claim past this point — see fhe/Reference.h).
  Ok = rescale(D, C1);
  Mark = Step("rescale (drops one limb)", Mark);
  if (!Ok) {
    std::fprintf(stderr, "rescale failed: %s\n", D.error().c_str());
    return 1;
  }

  std::printf("\ndecrypted m1*m2 + m3: %s\n",
              Correct ? "matches the plaintext circuit" : "MISMATCH");
  std::printf("level after rescale: %u limbs (ciphertext rebound to the "
              "cached subChain view)\n",
              unsigned(C1.context().numLimbs()));
  const auto &S = D.dispatchStats();
  std::printf("totals: %llu transforms, %llu stage groups, %llu batch "
              "kernels\n",
              static_cast<unsigned long long>(S.Transforms),
              static_cast<unsigned long long>(S.StageGroups),
              static_cast<unsigned long long>(S.Batches));
  std::printf("\nNote the multiply/relinearize/add steps dispatched zero "
              "inverse NTTs: products\ncompose in the transformed domain "
              "and coefficients materialize only when the\nrescale and "
              "decryption demand them (see DESIGN.md \"FHE layer & "
              "residue-form\nhandles\").\n");
  return Correct ? 0 : 1;
}
